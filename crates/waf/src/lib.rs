//! # septic-waf
//!
//! A ModSecurity-style web application firewall with a CRS-inspired rule
//! pack — the demo's comparison baseline (phases IV-B and IV-E).
//!
//! The engine reproduces ModSecurity's anomaly-scoring pipeline: each
//! request parameter is transformed (URL-decode, HTML-entity decode,
//! comment replacement, whitespace compression, lowercasing) and matched
//! against the rule pack; severities accumulate into an anomaly score and
//! the request is blocked at the CRS default inbound threshold.
//!
//! By construction — the same construction as the real CRS transforms —
//! classic payloads are caught while the paper's semantic-mismatch attacks
//! (Unicode homoglyph quotes, version-comment keyword hiding, second-order
//! stores) pass, producing the false negatives phase IV-E tabulates.
//!
//! ```
//! use septic_http::HttpRequest;
//! use septic_waf::ModSecurity;
//!
//! let waf = ModSecurity::new();
//! let classic = HttpRequest::post("/login").param("user", "' OR 1=1-- ");
//! assert!(waf.inspect(&classic).is_blocked());
//!
//! let mismatch = HttpRequest::post("/login").param("user", "ID34FG\u{02BC}-- ");
//! assert!(!waf.inspect(&mismatch).is_blocked());
//! ```

pub mod crs;
pub mod engine;
pub mod pattern;
pub mod rule;
pub mod transform;

pub use engine::{AuditEntry, ModSecurity, WafDecision, WafMode};
pub use pattern::Pattern;
pub use rule::{Rule, RuleMatch, Severity, Target};
