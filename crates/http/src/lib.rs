//! # septic-http
//!
//! Minimal simulated HTTP layer shared by the web applications and the WAF:
//! requests with query/body parameters, responses, and the URL
//! percent-codec (whose decode step is itself part of several WAF-evasion
//! stories).
//!
//! ```
//! use septic_http::{HttpRequest, Method};
//!
//! let req = HttpRequest::post("/login")
//!     .param("user", "admin")
//!     .param("pass", "secret");
//! assert_eq!(req.method, Method::Post);
//! assert_eq!(req.param_value("user"), Some("admin"));
//! ```

pub mod codec;
pub mod message;

pub use codec::{form_decode, form_encode, url_decode, url_encode};
pub use message::{HttpRequest, HttpResponse, Method, Status};
