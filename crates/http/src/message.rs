//! Request and response types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// HTTP method (the subset the simulated apps use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Get,
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Get => f.write_str("GET"),
            Method::Post => f.write_str("POST"),
        }
    }
}

/// Response status (the subset the simulated apps produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    Ok,
    Redirect,
    BadRequest,
    Forbidden,
    NotFound,
    ServerError,
}

impl Status {
    /// Numeric status code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Redirect => 302,
            Status::BadRequest => 400,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::ServerError => 500,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A simulated HTTP request: path plus ordered parameters (query string for
/// GET, form body for POST — the distinction only matters to the WAF's
/// target selection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpRequest {
    pub method: Method,
    pub path: String,
    /// Ordered `(name, value)` parameters, already percent-decoded (the
    /// web server decodes before the application sees them).
    pub params: Vec<(String, String)>,
    /// Session cookie, when the client holds one.
    pub session: Option<String>,
}

impl HttpRequest {
    /// Builds a GET request.
    #[must_use]
    pub fn get(path: impl Into<String>) -> Self {
        HttpRequest {
            method: Method::Get,
            path: path.into(),
            params: Vec::new(),
            session: None,
        }
    }

    /// Builds a POST request.
    #[must_use]
    pub fn post(path: impl Into<String>) -> Self {
        HttpRequest {
            method: Method::Post,
            path: path.into(),
            params: Vec::new(),
            session: None,
        }
    }

    /// Adds a parameter (builder style).
    #[must_use]
    pub fn param(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((name.into(), value.into()));
        self
    }

    /// Attaches a session token.
    #[must_use]
    pub fn with_session(mut self, token: impl Into<String>) -> Self {
        self.session = Some(token.into());
        self
    }

    /// First value of a named parameter.
    #[must_use]
    pub fn param_value(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a named parameter, or empty string (PHP's `$_REQUEST`
    /// with a missing key after `isset` shortcuts).
    #[must_use]
    pub fn param_or_empty(&self, name: &str) -> &str {
        self.param_value(name).unwrap_or("")
    }

    /// Replaces the value of a parameter (or appends it) — used by attack
    /// mutators.
    pub fn set_param(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        match self.params.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value,
            None => self.params.push((name.to_string(), value)),
        }
    }
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.method, self.path)?;
        if !self.params.is_empty() {
            let encoded = crate::codec::form_encode(
                self.params.iter().map(|(k, v)| (k.as_str(), v.as_str())),
            );
            write!(f, "?{encoded}")?;
        }
        Ok(())
    }
}

/// A simulated HTTP response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpResponse {
    pub status: Status,
    /// Rendered body (HTML-ish text the demo inspects for attack effects).
    pub body: String,
    /// Session cookie set by the handler, if any.
    pub set_session: Option<String>,
}

impl HttpResponse {
    /// 200 with a body.
    #[must_use]
    pub fn ok(body: impl Into<String>) -> Self {
        HttpResponse {
            status: Status::Ok,
            body: body.into(),
            set_session: None,
        }
    }

    /// Error response with a status and message.
    #[must_use]
    pub fn error(status: Status, message: impl Into<String>) -> Self {
        HttpResponse {
            status,
            body: message.into(),
            set_session: None,
        }
    }

    /// True for 2xx/3xx.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self.status, Status::Ok | Status::Redirect)
    }

    /// Attaches a session cookie.
    #[must_use]
    pub fn with_session(mut self, token: impl Into<String>) -> Self {
        self.set_session = Some(token.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let req = HttpRequest::post("/x")
            .param("a", "1")
            .param("a", "2")
            .param("b", "3");
        assert_eq!(req.param_value("a"), Some("1"));
        assert_eq!(req.param_value("missing"), None);
        assert_eq!(req.param_or_empty("missing"), "");
    }

    #[test]
    fn set_param_replaces_or_appends() {
        let mut req = HttpRequest::get("/x").param("a", "1");
        req.set_param("a", "9");
        req.set_param("new", "v");
        assert_eq!(req.param_value("a"), Some("9"));
        assert_eq!(req.param_value("new"), Some("v"));
    }

    #[test]
    fn display_encodes() {
        let req = HttpRequest::get("/search").param("q", "a b'c");
        assert_eq!(req.to_string(), "GET /search?q=a+b%27c");
    }

    #[test]
    fn response_helpers() {
        assert!(HttpResponse::ok("x").is_success());
        assert!(!HttpResponse::error(Status::Forbidden, "no").is_success());
        assert_eq!(Status::Forbidden.code(), 403);
        assert_eq!(Status::ServerError.to_string(), "500");
    }

    #[test]
    fn session_round_trip() {
        let req = HttpRequest::get("/").with_session("tok");
        assert_eq!(req.session.as_deref(), Some("tok"));
        let res = HttpResponse::ok("hi").with_session("tok2");
        assert_eq!(res.set_session.as_deref(), Some("tok2"));
    }
}
