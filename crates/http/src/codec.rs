//! URL percent-encoding and form codecs.

/// Percent-encodes everything outside the unreserved set.
#[must_use]
pub fn url_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for b in input.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes percent-escapes and `+` (form flavour). Invalid escapes pass
/// through literally, as browsers and PHP do.
#[must_use]
pub fn url_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 <= bytes.len() => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| {
                    let hi = (h[0] as char).to_digit(16)?;
                    let lo = (h[1] as char).to_digit(16)?;
                    Some((hi * 16 + lo) as u8)
                }) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Encodes key/value pairs as `a=1&b=2`.
#[must_use]
pub fn form_encode<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> String {
    pairs
        .into_iter()
        .map(|(k, v)| format!("{}={}", url_encode(k), url_encode(v)))
        .collect::<Vec<_>>()
        .join("&")
}

/// Decodes `a=1&b=2` into pairs (percent-decoded).
#[must_use]
pub fn form_decode(body: &str) -> Vec<(String, String)> {
    body.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(pair), String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_round_trip() {
        for s in [
            "hello world",
            "a=b&c",
            "quote ' and <tag>",
            "100% sure",
            "ünïcödé",
        ] {
            assert_eq!(url_decode(&url_encode(s)), s, "{s}");
        }
    }

    #[test]
    fn plus_is_space_on_decode() {
        assert_eq!(url_decode("a+b"), "a b");
        assert_eq!(url_encode("a b"), "a+b");
    }

    #[test]
    fn invalid_escapes_pass_through() {
        assert_eq!(url_decode("100%"), "100%");
        assert_eq!(url_decode("%zz"), "%zz");
        assert_eq!(url_decode("%4"), "%4");
    }

    #[test]
    fn classic_evasion_decodes() {
        // %27 = ', %2D%2D = --
        assert_eq!(url_decode("%27%20OR%201%3D1%2D%2D"), "' OR 1=1--");
    }

    #[test]
    fn form_round_trip() {
        let pairs = [("user", "ann o'neil"), ("q", "a&b=c")];
        let encoded = form_encode(pairs.iter().map(|(k, v)| (*k, *v)));
        let decoded = form_decode(&encoded);
        assert_eq!(decoded[0], ("user".to_string(), "ann o'neil".to_string()));
        assert_eq!(decoded[1], ("q".to_string(), "a&b=c".to_string()));
    }

    #[test]
    fn form_decode_tolerates_bare_keys() {
        let decoded = form_decode("flag&x=1&");
        assert_eq!(
            decoded,
            vec![("flag".into(), String::new()), ("x".into(), "1".into())]
        );
    }
}
