//! Program-cache reuse across sessions: compiling is per statement
//! *shape*, so two sessions preparing the same shape with different
//! literal values share one `Arc<Program>` — the second execution is a
//! refcount bump, never a recompile.

use std::sync::Arc;

use septic_dbms::{Server, Value};

fn setup() -> Arc<septic_dbms::Server> {
    let server = Server::new();
    let conn = server.connect();
    conn.execute("CREATE TABLE t (a VARCHAR(16), b INT)")
        .expect("create");
    conn.execute("INSERT INTO t (a, b) VALUES ('x', 1), ('y', 2), ('z', 3)")
        .expect("insert");
    server
}

#[test]
fn two_sessions_share_one_compiled_program() {
    let server = setup();
    let session_a = server.connect();
    let session_b = server.connect();

    // Session A prepares and runs the shape; programs compile once.
    let out = session_a
        .query_prepared("SELECT a FROM t WHERE a = ?", &[Value::from("x")])
        .expect("query a");
    assert_eq!(out.rows.len(), 1);
    let compiles_after_first = server.vm_cache().compile_count();
    assert!(
        compiles_after_first >= 1,
        "first execution must compile at least the WHERE program"
    );

    // Session B runs the same shape with a different literal: no new
    // compile, same cached programs.
    let out = session_b
        .query_prepared("SELECT a FROM t WHERE a = ?", &[Value::from("y")])
        .expect("query b");
    assert_eq!(out.rows.len(), 1);
    assert_eq!(
        server.vm_cache().compile_count(),
        compiles_after_first,
        "second session re-used the cached programs"
    );

    // And the cached WHERE program is literally the same allocation,
    // whatever literal values the shape is instantiated with.
    let p1 = server
        .vm_program_for("SELECT a FROM t WHERE a = 'x'")
        .expect("compiled program");
    let p2 = server
        .vm_program_for("SELECT a FROM t WHERE a = 'completely-different'")
        .expect("compiled program");
    assert!(Arc::ptr_eq(&p1, &p2), "same shape must share one program");
}

#[test]
fn different_shapes_get_different_programs() {
    let server = setup();
    let p1 = server
        .vm_program_for("SELECT a FROM t WHERE a = 'x'")
        .expect("compiled");
    let p2 = server
        .vm_program_for("SELECT a FROM t WHERE b = 1")
        .expect("compiled");
    assert!(!Arc::ptr_eq(&p1, &p2));
}

#[test]
fn aggregate_and_subquery_shapes_fall_back_without_evicting_compiled_shapes() {
    let server = setup();
    server.set_expr_vm(true);
    let conn = server.connect();

    // Compile a simple shape first (WHERE program + `a` projection item).
    conn.query("SELECT a FROM t WHERE a = 'x'").expect("simple");
    let simple = server
        .vm_program_for("SELECT a FROM t WHERE a = 'x'")
        .expect("simple shape compiles");
    let compiles = server.vm_cache().compile_count();
    let entries = server.vm_cache().len();

    // Aggregate and subquery shapes are VM-incompatible by design: they
    // must land in the negative cache (remembered as fallback entries)
    // without producing new compiles.
    conn.query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 0")
        .expect("aggregate query");
    conn.query("SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE b > 1)")
        .expect("subquery query");
    assert_eq!(
        server.vm_cache().compile_count(),
        compiles,
        "aggregate/subquery shapes must not compile"
    );
    let entries_after = server.vm_cache().len();
    assert!(
        entries_after > entries,
        "fallback shapes must be remembered in the negative cache"
    );

    // Re-running the fallback shapes is a cache hit, not a re-insert.
    conn.query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 0")
        .expect("aggregate again");
    conn.query("SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE b > 2)")
        .expect("subquery again");
    assert_eq!(
        server.vm_cache().len(),
        entries_after,
        "negative entries are cached, not duplicated"
    );
    assert_eq!(server.vm_cache().compile_count(), compiles);

    // The compiled simple shape survived the fallback traffic.
    let again = server
        .vm_program_for("SELECT a FROM t WHERE a = 'still-cached'")
        .expect("still compiled");
    assert!(
        Arc::ptr_eq(&simple, &again),
        "negative caching must not evict compiled simple shapes"
    );
}

#[test]
fn vm_and_walker_agree_on_results() {
    // Same data, same queries, expression VM on vs off: identical rows.
    let queries = [
        "SELECT a, b FROM t WHERE b > 1",
        "SELECT a FROM t WHERE a LIKE 'x%' OR b BETWEEN 2 AND 3",
        "SELECT a, CASE WHEN b = 1 THEN 'one' ELSE 'many' END FROM t",
        "SELECT a FROM t WHERE a IN ('x', 'z') AND b IS NOT NULL",
    ];
    let vm_server = setup();
    vm_server.set_expr_vm(true);
    let walker_server = setup();
    walker_server.set_expr_vm(false);
    let vm_conn = vm_server.connect();
    let walker_conn = walker_server.connect();
    for sql in queries {
        let vm = vm_conn.query(sql).expect("vm query");
        let walker = walker_conn.query(sql).expect("walker query");
        assert_eq!(vm.columns, walker.columns, "{sql}");
        assert_eq!(vm.rows, walker.rows, "{sql}");
    }
    assert!(
        vm_server.vm_cache().compile_count() > 0,
        "VM server must actually have compiled programs"
    );
    assert_eq!(
        walker_server.vm_cache().compile_count(),
        0,
        "walker server must not compile anything"
    );
}
