//! Compile-once/execute-many expression programs for the executor.
//!
//! WHERE clauses and non-aggregate projection items compile into flat
//! [`septic_vm::Program`]s keyed by *statement shape*: literals become
//! runtime constant slots, so `WHERE id = 1` and `WHERE id = 2` share one
//! cached program, and column references resolve to `(binding, column)`
//! indices at compile time. Per row, a reusable [`septic_vm::Vm`] runs the
//! opcode loop instead of recursing over the AST.
//!
//! All value semantics stay shared with the interpreted walker: the
//! [`ExprHost`] delegates to the very same [`crate::exec::apply_unary`] /
//! [`crate::exec::apply_binary`] / [`crate::expr::call_scalar`] helpers the
//! walker calls, so the two paths cannot drift — the walker remains
//! available (`Server::set_expr_vm(false)`) as the differential oracle.
//!
//! Expressions the walker treats non-uniformly fall back to the walker
//! entirely: aggregates, subqueries (`IN (SELECT …)`, `EXISTS`, scalar
//! subqueries), unbound parameters, and `IN` lists containing non-literal
//! members (the walker early-returns on the first hit, so pre-evaluating
//! the members could diverge on side effects or errors).

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::RwLock;
use septic_sql::ast::{BinaryOp, Expr, Literal, UnaryOp};
use septic_telemetry::{Counter, MetricsRegistry};
use septic_vm::{Host, Op, Program, ProgramBuilder};
use std::collections::HashMap;

use crate::error::DbError;
use crate::exec::{apply_binary, apply_unary, Binding, CRow};
use crate::expr::{call_scalar, is_aggregate, SideEffects};
use crate::value::Value;

/// Binary ops in a fixed decode order (`code` is the index).
const BIN_OPS: [BinaryOp; 23] = [
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::Xor,
    BinaryOp::Eq,
    BinaryOp::NullSafeEq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::IntDiv,
    BinaryOp::Mod,
    BinaryOp::Like,
    BinaryOp::NotLike,
    BinaryOp::BitAnd,
    BinaryOp::BitOr,
    BinaryOp::BitXor,
    BinaryOp::Shl,
    BinaryOp::Shr,
];

/// Unary ops in a fixed decode order.
const UN_OPS: [UnaryOp; 3] = [UnaryOp::Neg, UnaryOp::Not, UnaryOp::BitNot];

fn bin_code(op: BinaryOp) -> u16 {
    BIN_OPS
        .iter()
        .position(|o| *o == op)
        .expect("every BinaryOp has a code") as u16
}

fn un_code(op: UnaryOp) -> u16 {
    UN_OPS
        .iter()
        .position(|o| *o == op)
        .expect("every UnaryOp has a code") as u16
}

// ---------------------------------------------------------------------------
// shape hashing
// ---------------------------------------------------------------------------

/// Two independent FNV-1a states: the first is the cache key, the second a
/// verification checksum stored in the entry, so a 64-bit key collision
/// degrades to the (always correct) walker instead of running the wrong
/// program.
struct ShapeHash {
    key: u64,
    check: u64,
}

impl ShapeHash {
    fn new() -> Self {
        ShapeHash {
            key: 0xcbf2_9ce4_8422_2325,
            check: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.key ^= u64::from(b);
            self.key = self.key.wrapping_mul(0x0000_0100_0000_01b3);
            self.check = self.check.rotate_left(7) ^ u64::from(b);
            self.check = self.check.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    fn num(&mut self, n: u64) {
        self.bytes(&n.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.num(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Hashes the *shape* of an expression: every node except literal values,
/// so statements differing only in constants share a program.
fn hash_expr(expr: &Expr, h: &mut ShapeHash) {
    match expr {
        // Literal values are runtime slots — only the fact that a literal
        // sits here is part of the shape.
        Expr::Literal(_) => h.tag(1),
        Expr::Param => h.tag(2),
        Expr::Column { table, name } => {
            h.tag(3);
            if let Some(t) = table {
                h.str(t);
            }
            h.str(name);
        }
        Expr::Unary { op, operand } => {
            h.tag(4);
            h.num(u64::from(un_code(*op)));
            hash_expr(operand, h);
        }
        Expr::Binary { left, op, right } => {
            h.tag(5);
            h.num(u64::from(bin_code(*op)));
            hash_expr(left, h);
            hash_expr(right, h);
        }
        Expr::Function { name, args } => {
            h.tag(6);
            h.str(name);
            h.num(args.len() as u64);
            for a in args {
                hash_expr(a, h);
            }
        }
        Expr::IsNull { expr, negated } => {
            h.tag(7);
            h.num(u64::from(*negated));
            hash_expr(expr, h);
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            h.tag(8);
            h.num(u64::from(*negated));
            h.num(list.len() as u64);
            hash_expr(expr, h);
            for i in list {
                hash_expr(i, h);
            }
        }
        // Subquery forms never compile (they cache a fallback entry), so
        // hashing their outer shape without descending into the SELECT is
        // enough to key them.
        Expr::InSelect { expr, negated, .. } => {
            h.tag(9);
            h.num(u64::from(*negated));
            hash_expr(expr, h);
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            h.tag(10);
            h.num(u64::from(*negated));
            hash_expr(expr, h);
            hash_expr(low, h);
            hash_expr(high, h);
        }
        Expr::Subquery(_) => h.tag(11),
        Expr::Exists { negated, .. } => {
            h.tag(12);
            h.num(u64::from(*negated));
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            h.tag(13);
            h.num(u64::from(operand.is_some()));
            h.num(branches.len() as u64);
            if let Some(o) = operand {
                hash_expr(o, h);
            }
            for (w, t) in branches {
                hash_expr(w, h);
                hash_expr(t, h);
            }
            h.num(u64::from(else_branch.is_some()));
            if let Some(e) = else_branch {
                hash_expr(e, h);
            }
        }
    }
}

/// The layout fingerprint: column resolution depends on binding names and
/// schemas, so they are part of the key (a table dropped and re-created
/// with different columns must not reuse stale programs).
fn hash_layout(layout: &[Binding], h: &mut ShapeHash) {
    h.num(layout.len() as u64);
    for b in layout {
        h.str(&b.name);
        h.str(&b.schema.name);
        h.num(b.schema.columns.len() as u64);
        for c in &b.schema.columns {
            h.str(&c.name);
        }
    }
}

fn shape_key(expr: &Expr, layout: &[Binding]) -> (u64, u64) {
    let mut h = ShapeHash::new();
    hash_layout(layout, &mut h);
    hash_expr(expr, &mut h);
    (h.key, h.check)
}

// ---------------------------------------------------------------------------
// compilation
// ---------------------------------------------------------------------------

/// Mirrors [`crate::exec`]'s column resolution (outer scope excluded —
/// compiled programs only run for top-level, uncorrelated evaluation).
fn resolve_column(layout: &[Binding], table: Option<&str>, name: &str) -> Option<(u16, u16)> {
    for (bi, binding) in layout.iter().enumerate() {
        if let Some(t) = table {
            if !binding.name.eq_ignore_ascii_case(t) {
                continue;
            }
        }
        if let Ok(ci) = binding.schema.column_index(name) {
            return Some((bi as u16, ci as u16));
        }
        if table.is_some() {
            return None;
        }
    }
    None
}

struct Compiler<'a> {
    b: ProgramBuilder,
    layout: &'a [Binding],
}

impl Compiler<'_> {
    /// Emits ops for `expr`; `None` means the expression (or a subtree)
    /// must stay on the interpreted walker.
    #[allow(clippy::too_many_lines)]
    fn emit(&mut self, expr: &Expr) -> Option<()> {
        match expr {
            Expr::Literal(_) => {
                let s = self.b.slot();
                self.b.emit(Op::Slot(s));
            }
            Expr::Param => return None,
            Expr::Column { table, name } => {
                match resolve_column(self.layout, table.as_deref(), name) {
                    Some((binding, column)) => {
                        self.b.emit(Op::Column { binding, column });
                    }
                    None => {
                        // Unresolvable now and at runtime: raise the same
                        // UnknownColumn error the walker would.
                        let n = self.b.name(name);
                        self.b.emit(Op::MissingColumn(n));
                    }
                }
            }
            Expr::Unary { op, operand } => {
                self.emit(operand)?;
                self.b.emit(Op::Unary(un_code(*op)));
            }
            // AND/OR/XOR need no jumps: the walker evaluates both sides
            // too (MySQL three-valued logic, no short-circuit here).
            Expr::Binary { left, op, right } => {
                self.emit(left)?;
                self.emit(right)?;
                self.b.emit(Op::Binary(bin_code(*op)));
            }
            Expr::Function { name, args } => {
                if is_aggregate(name) || args.len() > usize::from(u16::MAX) {
                    return None;
                }
                for a in args {
                    self.emit(a)?;
                }
                let n = self.b.name(name);
                self.b.emit(Op::Call {
                    name: n,
                    argc: args.len() as u16,
                });
            }
            Expr::IsNull { expr, negated } => {
                self.emit(expr)?;
                self.b.emit(Op::IsNull { negated: *negated });
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                // Only all-literal lists compile: the walker evaluates
                // members lazily and early-returns on the first hit, so
                // pre-evaluated non-literal members could diverge.
                if list.is_empty()
                    || list.len() > usize::from(u16::MAX)
                    || !list.iter().all(|i| matches!(i, Expr::Literal(_)))
                {
                    return None;
                }
                self.emit(expr)?;
                let start = self.b.slot();
                for _ in 1..list.len() {
                    self.b.slot();
                }
                self.b.emit(Op::InListSlots {
                    start,
                    count: list.len() as u16,
                    negated: *negated,
                });
            }
            Expr::InSelect { .. } | Expr::Subquery(_) | Expr::Exists { .. } => return None,
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.emit(expr)?;
                self.emit(low)?;
                self.emit(high)?;
                self.b.emit(Op::Between { negated: *negated });
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                let mut end_jumps = Vec::with_capacity(branches.len());
                if let Some(op_expr) = operand {
                    self.emit(op_expr)?;
                    for (when, then) in branches {
                        self.b.emit(Op::Dup);
                        self.emit(when)?;
                        let miss = self.b.emit(Op::JumpIfCaseNe(0));
                        self.b.emit(Op::Pop);
                        self.emit(then)?;
                        end_jumps.push(self.b.emit(Op::Jump(0)));
                        self.b.patch_jump(miss);
                    }
                    // No branch hit: drop the operand, fall to ELSE.
                    self.b.emit(Op::Pop);
                } else {
                    for (when, then) in branches {
                        self.emit(when)?;
                        let miss = self.b.emit(Op::JumpIfNotTruthy(0));
                        self.emit(then)?;
                        end_jumps.push(self.b.emit(Op::Jump(0)));
                        self.b.patch_jump(miss);
                    }
                }
                match else_branch {
                    Some(e) => self.emit(e)?,
                    None => {
                        self.b.emit(Op::PushNull);
                    }
                }
                for j in end_jumps {
                    self.b.patch_jump(j);
                }
            }
        }
        Some(())
    }
}

/// Compiles an expression against a FROM layout; `None` for expressions
/// that must stay on the walker.
#[must_use]
pub(crate) fn compile_expr(expr: &Expr, layout: &[Binding]) -> Option<Program> {
    let mut c = Compiler {
        b: ProgramBuilder::new(),
        layout,
    };
    c.emit(expr)?;
    Some(c.b.finish())
}

/// Collects literal values in the exact order [`compile_expr`] reserved
/// slots for them (the same traversal order), filling the program's
/// runtime constant table for one statement execution.
pub(crate) fn collect_literals(expr: &Expr, out: &mut Vec<Value>) {
    match expr {
        Expr::Literal(l) => out.push(literal_value(l)),
        Expr::Param | Expr::Column { .. } => {}
        Expr::Unary { operand, .. } => collect_literals(operand, out),
        Expr::Binary { left, right, .. } => {
            collect_literals(left, out);
            collect_literals(right, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_literals(a, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_literals(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_literals(expr, out);
            for i in list {
                collect_literals(i, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_literals(expr, out);
            collect_literals(low, out);
            collect_literals(high, out);
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(o) = operand {
                collect_literals(o, out);
            }
            for (w, t) in branches {
                collect_literals(w, out);
                collect_literals(t, out);
            }
            if let Some(e) = else_branch {
                collect_literals(e, out);
            }
        }
        // Never part of a compiled program (compile_expr rejects them).
        Expr::InSelect { .. } | Expr::Subquery(_) | Expr::Exists { .. } => {}
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Real(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    }
}

// ---------------------------------------------------------------------------
// the Host
// ---------------------------------------------------------------------------

/// The executor's [`Host`]: row access plus the walker's own coercion
/// helpers, so VM and walker share one semantics implementation.
pub(crate) struct ExprHost<'a> {
    pub(crate) slots: &'a [Value],
    pub(crate) row: &'a CRow,
    pub(crate) now: i64,
    pub(crate) fx: &'a mut SideEffects,
}

impl Host for ExprHost<'_> {
    type Value = Value;
    type Error = DbError;

    fn slot(&self, idx: u32) -> Value {
        self.slots.get(idx as usize).cloned().unwrap_or(Value::Null)
    }

    fn column(&self, binding: u16, column: u16) -> Value {
        self.row.cells[usize::from(binding)][usize::from(column)].clone()
    }

    fn missing_column(&mut self, name: &str) -> DbError {
        DbError::UnknownColumn(name.to_string())
    }

    fn unary(&mut self, code: u16, v: Value) -> Result<Value, DbError> {
        Ok(apply_unary(UN_OPS[usize::from(code)], v))
    }

    fn binary(&mut self, code: u16, left: Value, right: Value) -> Result<Value, DbError> {
        Ok(apply_binary(BIN_OPS[usize::from(code)], left, right))
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, DbError> {
        call_scalar(name, args, self.now, self.fx)
    }

    fn is_truthy(&self, v: &Value) -> bool {
        v.is_truthy()
    }

    fn is_null(&self, v: &Value) -> bool {
        v.is_null()
    }

    fn case_eq(&self, operand: &Value, when: &Value) -> bool {
        operand.sql_eq(when) == Some(true)
    }

    fn eq_slot(&self, needle: &Value, slot: u32) -> Option<bool> {
        match self.slots.get(slot as usize) {
            Some(v) => needle.sql_eq(v),
            None => None,
        }
    }

    fn cmp3(&self, a: &Value, b: &Value) -> Option<Ordering> {
        a.sql_cmp(b)
    }

    fn null(&self) -> Value {
        Value::Null
    }

    fn bool_value(&self, b: bool) -> Value {
        Value::Int(i64::from(b))
    }
}

// ---------------------------------------------------------------------------
// the program cache
// ---------------------------------------------------------------------------

/// Entries the cache refuses to grow past; shapes beyond this execute
/// compiled-but-uncached (correct, just not shared).
const CACHE_CAP: usize = 1024;

#[derive(Clone)]
enum Entry {
    /// Shape compiles: the shared program.
    Compiled { check: u64, program: Arc<Program> },
    /// Shape is walker-only; cached so the compile attempt is not repeated
    /// on every execution.
    Fallback { check: u64 },
}

#[derive(Debug)]
struct CacheMetrics {
    compiles: Arc<Counter>,
    cached: Arc<Counter>,
}

/// Shape-keyed cache of compiled expression programs, shared by all
/// sessions of a [`crate::Server`]: two sessions preparing the same
/// statement shape get the *same* `Arc<Program>` (a refcount bump).
#[derive(Default)]
pub struct ProgramCache {
    map: RwLock<HashMap<u64, Entry>>,
    compiles: AtomicU64,
    metrics: RwLock<Option<CacheMetrics>>,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `dbms_vm_compiles_total` and `dbms_vm_cached_programs`
    /// in `registry` and mirrors the cache state into them.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let m = CacheMetrics {
            compiles: registry.counter("dbms_vm_compiles_total"),
            cached: registry.counter("dbms_vm_cached_programs"),
        };
        m.compiles.set(self.compiles.load(AtomicOrdering::Relaxed));
        m.cached.set(self.len() as u64);
        *self.metrics.write() = Some(m);
    }

    /// Expression programs compiled so far (fallback shapes don't count).
    #[must_use]
    pub fn compile_count(&self) -> u64 {
        self.compiles.load(AtomicOrdering::Relaxed)
    }

    /// Cached entries (compiled programs plus negative fallback entries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The compiled program for `expr` under `layout` — cached per shape;
    /// compiles on first sight. `None` means "use the walker".
    pub(crate) fn program_for(&self, expr: &Expr, layout: &[Binding]) -> Option<Arc<Program>> {
        let (key, check) = shape_key(expr, layout);
        if let Some(entry) = self.map.read().get(&key) {
            return match entry {
                Entry::Compiled { check: c, program } if *c == check => Some(Arc::clone(program)),
                // Known walker-only shape.
                Entry::Fallback { check: c } if *c == check => None,
                // Key collision with a different shape: the walker is
                // always correct, use it.
                _ => None,
            };
        }
        let compiled = compile_expr(expr, layout).map(Arc::new);
        let mut map = self.map.write();
        // Double-checked: a racing session may have inserted meanwhile —
        // return *its* program so the Arc stays shared.
        if let Some(entry) = map.get(&key) {
            return match entry {
                Entry::Compiled { check: c, program } if *c == check => Some(Arc::clone(program)),
                _ => None,
            };
        }
        if map.len() < CACHE_CAP {
            let entry = match &compiled {
                Some(program) => Entry::Compiled {
                    check,
                    program: Arc::clone(program),
                },
                None => Entry::Fallback { check },
            };
            map.insert(key, entry);
        }
        let cached_now = map.len() as u64;
        drop(map);
        if compiled.is_some() {
            self.compiles.fetch_add(1, AtomicOrdering::Relaxed);
        }
        if let Some(m) = self.metrics.read().as_ref() {
            m.compiles.set(self.compiles.load(AtomicOrdering::Relaxed));
            m.cached.set(cached_now);
        }
        compiled
    }
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("entries", &self.len())
            .field("compiles", &self.compile_count())
            .finish()
    }
}
