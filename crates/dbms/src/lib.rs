//! # septic-dbms
//!
//! An in-memory, MySQL-like relational engine with a **pre-execution guard
//! hook** — the substrate the SEPTIC reproduction runs inside of, standing
//! in for a patched MySQL server.
//!
//! The pipeline mirrors MySQL's: the server receives raw query bytes,
//! decodes them from the connection charset (folding Unicode homoglyphs the
//! way `utf8_general_ci` does), parses and validates them, lowers the
//! statements to the item-stack representation, then invokes the installed
//! [`guard::QueryGuard`] *right before execution* — exactly the point the
//! paper inserts SEPTIC at — and finally executes.
//!
//! ```
//! use septic_dbms::Server;
//!
//! let server = Server::new();
//! let conn = server.connect();
//! conn.execute("CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT)")?;
//! conn.execute("INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)")?;
//! let out = conn.query("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")?;
//! assert_eq!(out.rows.len(), 1);
//! # Ok::<(), septic_dbms::DbError>(())
//! ```

pub mod bind;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod expr;
pub mod guard;
pub mod plan;
pub mod server;
pub mod storage;
pub mod value;
pub mod vmexec;
pub mod wal;

pub use error::DbError;
pub use exec::{execute_read, execute_read_with, execute_with, is_read_only, QueryOutput};
pub use guard::{AllowAll, FailurePolicy, GuardDecision, QueryContext, QueryGuard, SharedGuard};
pub use plan::explain;
pub use server::{
    Connection, ExecResult, GeneralLogEntry, Server, ServerConfig, ServerStatsSnapshot,
    SessionSnapshot,
};
pub use storage::{Database, PkKey, Row, TableStore};
pub use value::Value;
pub use vmexec::ProgramCache;
pub use wal::{
    FsIo, MemIo, NullBackend, RecoveryReport, StorageBackend, StorageIo, WalConfig, WalStmt,
    WalStorage,
};
