//! Query planner: lowers one SELECT arm into an explicit stage pipeline.
//!
//! Planning is pure name resolution plus stage selection — no rows are
//! touched. The output [`SelectPlan`] is a linear pipeline the executor in
//! [`crate::exec`] interprets against storage:
//!
//! ```text
//! Scan (cartesian FROM)
//!   -> NestedLoopJoin*          (INNER/LEFT, ON predicate)
//!   -> Filter                   (WHERE, compiled program or walker)
//!   -> Aggregate?               (GROUP BY keys + HAVING over groups)
//!   -> Project                  (labels resolved here)
//!   -> Sort? -> Distinct? -> Limit?
//! ```
//!
//! Splitting the plan from its interpretation keeps the stage decisions
//! (aggregate-or-not, join binding indexes, output labels) inspectable:
//! [`explain`] renders the pipeline for tests and debugging, and the
//! conformance lab asserts plan shapes stay stable as the SQL surface
//! grows.

use septic_sql::ast::{Expr, JoinKind, Limit, OrderBy, Select, SelectItem, Statement, TableRef};

use crate::error::DbError;
use crate::exec::Binding;
use crate::expr::is_aggregate;
use crate::storage::Database;

/// One join step of the pipeline: nested-loop join the bound table into
/// the composite row, keeping rows whose ON predicate holds (LEFT joins
/// null-pad unmatched probe rows).
pub(crate) struct JoinStep<'a> {
    pub(crate) kind: JoinKind,
    pub(crate) table: &'a TableRef,
    pub(crate) on: Option<&'a Expr>,
    /// Index of the joined table's binding in the plan layout. During the
    /// join only `layout[..=binding]` is visible — later joins have not
    /// produced cells yet.
    pub(crate) binding: usize,
}

/// Grouping stage: partition filtered rows by the GROUP BY key vector
/// (one synthetic all-rows group when aggregates appear without GROUP BY)
/// and keep groups whose HAVING predicate holds.
pub(crate) struct AggregatePlan<'a> {
    pub(crate) group_by: &'a [Expr],
    pub(crate) having: Option<&'a Expr>,
}

/// Projection stage: the select items plus their resolved output labels.
pub(crate) struct ProjectPlan<'a> {
    pub(crate) items: &'a [SelectItem],
    pub(crate) columns: Vec<String>,
}

/// A fully planned SELECT arm (UNION chaining stays above the planner —
/// each arm is planned independently).
pub(crate) struct SelectPlan<'a> {
    /// All visible bindings: FROM tables first, then joined tables in
    /// join order.
    pub(crate) layout: Vec<Binding>,
    /// Cartesian-product sources (the FROM list).
    pub(crate) scan: Vec<&'a TableRef>,
    pub(crate) joins: Vec<JoinStep<'a>>,
    pub(crate) filter: Option<&'a Expr>,
    pub(crate) aggregate: Option<AggregatePlan<'a>>,
    pub(crate) project: ProjectPlan<'a>,
    pub(crate) order_by: &'a [OrderBy],
    pub(crate) distinct: bool,
    pub(crate) limit: Option<&'a Limit>,
}

impl<'a> SelectPlan<'a> {
    /// Plans one SELECT arm: resolves every table binding against the
    /// catalog, decides the aggregate stage, and fixes projection labels.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when a FROM/JOIN table or a qualified
    /// wildcard target does not resolve.
    pub(crate) fn build(db: &Database, select: &'a Select) -> Result<Self, DbError> {
        let mut layout: Vec<Binding> = Vec::new();
        for t in &select.from {
            let store = db.table_or_virtual(&t.name)?;
            layout.push(Binding {
                name: t.binding_name().to_string(),
                schema: store.schema.clone(),
            });
        }
        let mut joins = Vec::with_capacity(select.joins.len());
        for j in &select.joins {
            let store = db.table_or_virtual(&j.table.name)?;
            layout.push(Binding {
                name: j.table.binding_name().to_string(),
                schema: store.schema.clone(),
            });
            joins.push(JoinStep {
                kind: j.kind,
                table: &j.table,
                on: j.on.as_ref(),
                binding: layout.len() - 1,
            });
        }

        // A bare aggregate (no GROUP BY) still groups: one synthetic
        // all-rows group, exactly MySQL's implicit grouping.
        let has_agg = select.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr_has_aggregate(expr),
            _ => false,
        }) || select.having.as_ref().is_some_and(expr_has_aggregate);
        let aggregate = if has_agg || !select.group_by.is_empty() {
            Some(AggregatePlan {
                group_by: &select.group_by,
                having: select.having.as_ref(),
            })
        } else {
            None
        };

        let mut columns: Vec<String> = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    for b in &layout {
                        for c in &b.schema.columns {
                            columns.push(c.name.clone());
                        }
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let b = layout
                        .iter()
                        .find(|b| b.name.eq_ignore_ascii_case(t))
                        .ok_or_else(|| DbError::UnknownTable(t.clone()))?;
                    for c in &b.schema.columns {
                        columns.push(c.name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                }
            }
        }

        Ok(SelectPlan {
            layout,
            scan: select.from.iter().collect(),
            joins,
            filter: select.where_clause.as_ref(),
            aggregate,
            project: ProjectPlan {
                items: &select.items,
                columns,
            },
            order_by: &select.order_by,
            distinct: select.distinct,
            limit: select.limit.as_ref(),
        })
    }

    /// Renders the pipeline bottom-up (sources first), one stage per line.
    #[must_use]
    pub(crate) fn describe(&self) -> String {
        let mut out = String::new();
        let mut push = |line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        if self.scan.is_empty() {
            push("Scan <dual>".to_string());
        }
        for t in &self.scan {
            push(format!("Scan {}", describe_table(t)));
        }
        for j in &self.joins {
            let on = match j.on {
                Some(e) => format!(" ON {e}"),
                None => String::new(),
            };
            push(format!(
                "NestedLoopJoin {} {}{on}",
                j.kind,
                describe_table(j.table)
            ));
        }
        if let Some(f) = self.filter {
            push(format!("Filter {f}"));
        }
        if let Some(agg) = &self.aggregate {
            let keys: Vec<String> = agg.group_by.iter().map(ToString::to_string).collect();
            let having = match agg.having {
                Some(h) => format!(" having {h}"),
                None => String::new(),
            };
            push(format!("Aggregate group_by=[{}]{having}", keys.join(", ")));
        }
        push(format!("Project [{}]", self.project.columns.join(", ")));
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|o| format!("{} {}", o.expr, if o.descending { "DESC" } else { "ASC" }))
                .collect();
            push(format!("Sort [{}]", keys.join(", ")));
        }
        if self.distinct {
            push("Distinct".to_string());
        }
        if let Some(l) = self.limit {
            push(format!("Limit {} OFFSET {}", l.count, l.offset));
        }
        out
    }
}

fn describe_table(t: &TableRef) -> String {
    match &t.alias {
        Some(a) => format!("{} AS {a}", t.name),
        None => t.name.clone(),
    }
}

/// Renders the full plan of a statement's SELECT arms (UNION arms are
/// planned independently and separated by a `Union` line). Test/debug
/// surface for asserting plan shapes.
///
/// # Errors
///
/// As [`SelectPlan::build`]; non-SELECT statements are
/// [`DbError::Semantic`].
pub fn explain(db: &Database, stmt: &Statement) -> Result<String, DbError> {
    let Statement::Select(select) = stmt else {
        return Err(DbError::Semantic("EXPLAIN only covers SELECT".into()));
    };
    let mut out = String::new();
    for (i, arm) in select.arms().enumerate() {
        if i > 0 {
            out.push_str("Union\n");
        }
        out.push_str(&SelectPlan::build(db, arm)?.describe());
    }
    Ok(out)
}

/// True when the expression contains an aggregate call at any depth that
/// applies to the *current* scope (subqueries run their own planner pass,
/// so aggregates inside them do not force grouping here).
pub(crate) fn expr_has_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Function { name, args } => is_aggregate(name) || args.iter().any(expr_has_aggregate),
        Expr::Unary { operand, .. } => expr_has_aggregate(operand),
        Expr::Binary { left, right, .. } => expr_has_aggregate(left) || expr_has_aggregate(right),
        Expr::IsNull { expr, .. } => expr_has_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            expr_has_aggregate(expr) || list.iter().any(expr_has_aggregate)
        }
        Expr::InSelect { expr, .. } => expr_has_aggregate(expr),
        Expr::Between {
            expr, low, high, ..
        } => expr_has_aggregate(expr) || expr_has_aggregate(low) || expr_has_aggregate(high),
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand.as_deref().is_some_and(expr_has_aggregate)
                || branches
                    .iter()
                    .any(|(w, t)| expr_has_aggregate(w) || expr_has_aggregate(t))
                || else_branch.as_deref().is_some_and(expr_has_aggregate)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use septic_sql::parse;

    fn db_with_fleet() -> Database {
        let mut db = Database::new();
        for sql in [
            "CREATE TABLE devices (id INT PRIMARY KEY AUTO_INCREMENT, \
             name VARCHAR(32), owner VARCHAR(32))",
            "CREATE TABLE readings (id INT PRIMARY KEY AUTO_INCREMENT, \
             device VARCHAR(32), watts INT)",
        ] {
            let parsed = parse(sql).expect("parse");
            execute(&mut db, &parsed.statements[0], 0).expect("create");
        }
        db
    }

    fn plan_of(db: &Database, sql: &str) -> String {
        let parsed = parse(sql).expect("parse");
        explain(db, &parsed.statements[0]).expect("plan")
    }

    #[test]
    fn join_plan_orders_stages() {
        let db = db_with_fleet();
        let text = plan_of(
            &db,
            "SELECT d.owner, r.watts FROM devices d \
             LEFT JOIN readings r ON r.device = d.name WHERE r.watts > 5",
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Scan devices AS d");
        assert!(lines[1].starts_with("NestedLoopJoin LEFT JOIN readings AS r ON"));
        assert!(lines[2].starts_with("Filter"));
        assert!(lines[3].starts_with("Project [d.owner, r.watts]"));
    }

    #[test]
    fn join_binding_indexes_follow_layout() {
        let db = db_with_fleet();
        let parsed = parse(
            "SELECT * FROM devices JOIN readings r ON r.device = devices.name \
             JOIN devices d2 ON d2.name = r.device",
        )
        .expect("parse");
        let Statement::Select(s) = &parsed.statements[0] else {
            panic!()
        };
        let plan = SelectPlan::build(&db, s).expect("plan");
        assert_eq!(plan.layout.len(), 3);
        assert_eq!(plan.joins[0].binding, 1);
        assert_eq!(plan.joins[1].binding, 2);
        assert_eq!(plan.layout[1].name, "r");
        assert_eq!(plan.layout[2].name, "d2");
    }

    #[test]
    fn bare_aggregate_forces_grouping_stage() {
        let db = db_with_fleet();
        let text = plan_of(&db, "SELECT COUNT(*) FROM readings");
        assert!(text.contains("Aggregate group_by=[]"), "{text}");
        // ... and a plain projection does not.
        let text = plan_of(&db, "SELECT watts FROM readings");
        assert!(!text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn aggregate_only_in_having_still_groups() {
        let db = db_with_fleet();
        let text = plan_of(
            &db,
            "SELECT device FROM readings GROUP BY device HAVING SUM(watts) > 10",
        );
        assert!(
            text.contains("Aggregate group_by=[device] having"),
            "{text}"
        );
    }

    #[test]
    fn subquery_aggregates_do_not_group_outer_arm() {
        let db = db_with_fleet();
        let text = plan_of(
            &db,
            "SELECT name FROM devices WHERE name IN \
             (SELECT device FROM readings)",
        );
        assert!(!text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn union_arms_plan_independently() {
        let db = db_with_fleet();
        let text = plan_of(
            &db,
            "SELECT name FROM devices UNION SELECT device FROM readings",
        );
        let unions = text.lines().filter(|l| *l == "Union").count();
        assert_eq!(unions, 1);
        assert_eq!(text.lines().filter(|l| l.starts_with("Scan")).count(), 2);
    }

    #[test]
    fn sort_distinct_limit_render_in_order() {
        let db = db_with_fleet();
        let text = plan_of(
            &db,
            "SELECT DISTINCT owner FROM devices ORDER BY owner DESC LIMIT 3, 7",
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "Scan devices",
                "Project [owner]",
                "Sort [owner DESC]",
                "Distinct",
                "Limit 7 OFFSET 3",
            ]
        );
    }

    #[test]
    fn unknown_table_fails_planning() {
        let db = db_with_fleet();
        let parsed = parse("SELECT * FROM ghosts").expect("parse");
        let Statement::Select(s) = &parsed.statements[0] else {
            panic!()
        };
        assert!(matches!(
            SelectPlan::build(&db, s),
            Err(DbError::UnknownTable(_))
        ));
    }
}
