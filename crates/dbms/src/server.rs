//! The server front end: receive → decode → parse → validate → lower →
//! **guard** → execute.
//!
//! This is the MySQL stand-in of the reproduction. A [`Server`] owns the
//! database, an optional [`crate::guard::QueryGuard`] (SEPTIC), a general log and a
//! logical clock; [`Connection`]s are cheap handles that run queries
//! through the full pipeline.
//!
//! # Concurrency
//!
//! The server is a session-per-thread front end: every [`Connection`] is a
//! session with its own id and counters, safe to move to its own thread
//! while all sessions share the one database and guard. Read-only calls
//! (pure `SELECT`s) execute under the database's shared read lock, so
//! parallel sessions overlap; mutating statements serialize on the write
//! lock as before.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use septic_sql::ast::InsertSource;
use septic_sql::{charset, items, parse, Statement};
use septic_telemetry::{label_value, Counter, Histogram, MetricsRegistry, MetricsSnapshot};

use crate::error::DbError;
use crate::exec::{
    execute_read_with, execute_with, is_read_only, validate, where_program, QueryOutput,
};
use crate::guard::{FailurePolicy, GuardDecision, QueryContext, SharedGuard};
use crate::storage::Database;
use crate::value::Value;
use crate::vmexec::ProgramCache;
use crate::wal::{
    NullBackend, RecoveryReport, StorageBackend, StorageIo, WalConfig, WalStmt, WalStorage,
};

/// Default for the expression-VM execution path: on, unless `SEPTIC_VM`
/// is set to `0` or `off` (same switch the detection VM honours).
#[must_use]
pub fn expr_vm_default() -> bool {
    std::env::var("SEPTIC_VM").map_or(true, |v| v != "0" && !v.eq_ignore_ascii_case("off"))
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Whether stacked (`;`-separated) statements are accepted in one call.
    /// Mirrors MySQL's `CLIENT_MULTI_STATEMENTS`; the demo's piggyback
    /// attacks need it on.
    pub allow_multi_statements: bool,
    /// Capacity of the in-memory general log.
    pub general_log_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            allow_multi_statements: true,
            general_log_capacity: 4096,
        }
    }
}

/// One entry of the general query log.
#[derive(Debug, Clone)]
pub struct GeneralLogEntry {
    /// Logical timestamp (monotone per server).
    pub at: i64,
    /// The session (connection) the query arrived on.
    pub session: u64,
    /// The raw query as received.
    pub sql: String,
    /// Outcome summary: `ok`, `blocked: …` or `error: …`.
    pub outcome: String,
}

/// One write buffered inside an open transaction: the parsed statement
/// (re-executed against the master database at commit) together with the
/// WAL form (`NOW()` timestamp + rendered SQL) that makes the commit
/// replayable after a crash.
#[derive(Debug, Clone)]
struct BufferedWrite {
    stmt: Statement,
    wal: WalStmt,
}

/// An open transaction: a copy-on-write MVCC snapshot the session reads
/// and writes privately, plus the redo buffer replayed at `COMMIT`.
///
/// The snapshot is taken at `BEGIN`; concurrent committers never touch
/// it, so in-transaction reads are repeatable. At commit the buffered
/// writes are re-executed against the *current* master under the write
/// lock — a write that no longer applies (duplicate key created by a
/// concurrent commit, table dropped, …) aborts the transaction with
/// [`DbError::TxnAborted`] (first-committer-wins).
#[derive(Debug)]
struct Txn {
    working: Database,
    redo: Vec<BufferedWrite>,
}

/// Per-session (per-[`Connection`]) state: an id for the general log plus
/// outcome counters, all atomics so a session can be observed from other
/// threads while it runs.
#[derive(Debug)]
struct SessionState {
    id: u64,
    queries_ok: AtomicU64,
    queries_blocked: AtomicU64,
    queries_failed: AtomicU64,
    /// Wall-clock pipeline time of this session's successful queries,
    /// microseconds.
    busy_micros: AtomicU64,
    /// Client-observed time (wall + simulated `SLEEP`/`BENCHMARK` delay)
    /// of this session's successful queries, microseconds.
    observed_micros: AtomicU64,
    /// The open transaction, if any (`BEGIN` … `COMMIT`/`ROLLBACK`).
    txn: Mutex<Option<Txn>>,
}

impl SessionState {
    fn new(id: u64) -> Self {
        SessionState {
            id,
            queries_ok: AtomicU64::new(0),
            queries_blocked: AtomicU64::new(0),
            queries_failed: AtomicU64::new(0),
            busy_micros: AtomicU64::new(0),
            observed_micros: AtomicU64::new(0),
            txn: Mutex::new(None),
        }
    }
}

/// Point-in-time snapshot of one session's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSnapshot {
    /// The session id (also stamped on its general-log entries).
    pub id: u64,
    /// Queries that completed successfully.
    pub queries_ok: u64,
    /// Queries dropped by the guard ([`DbError::Blocked`]).
    pub queries_blocked: u64,
    /// Queries that failed for any other reason (parse, validation,
    /// runtime, guard failure).
    pub queries_failed: u64,
    /// Wall-clock pipeline time of the successful queries, microseconds.
    pub busy_us: u64,
    /// Client-observed time (wall + simulated delay) of the successful
    /// queries, microseconds. `>= busy_us`; the gap is the time-based
    /// blind-injection channel (`SLEEP`/`BENCHMARK`).
    pub observed_us: u64,
}

/// Degradation counters for the fail-safe machinery. All monotone,
/// backed by the server's [`MetricsRegistry`] (so they appear in the
/// Prometheus export as `dbms_*_total`); read them via [`Server::stats`].
#[derive(Debug)]
struct ServerStats {
    /// Guard `inspect` calls that panicked (contained by the server).
    guard_panics: Arc<Counter>,
    /// Queries that executed *despite* a guard failure because the
    /// guard's policy was [`FailurePolicy::FailOpen`].
    fail_open_passes: Arc<Counter>,
    /// General-log entries evicted (or refused) because the ring buffer
    /// was full.
    log_drops: Arc<Counter>,
}

impl ServerStats {
    fn register(registry: &MetricsRegistry) -> Self {
        ServerStats {
            guard_panics: registry.counter("dbms_guard_panics_total"),
            fail_open_passes: registry.counter("dbms_fail_open_passes_total"),
            log_drops: registry.counter("dbms_log_drops_total"),
        }
    }
}

/// Transaction outcome counters (`dbms_txn_*_total` in the Prometheus
/// export).
#[derive(Debug)]
struct TxnStats {
    begins: Arc<Counter>,
    commits: Arc<Counter>,
    rollbacks: Arc<Counter>,
    /// Commits aborted because a buffered write no longer applied against
    /// the master database (first-committer-wins conflicts).
    conflicts: Arc<Counter>,
}

impl TxnStats {
    fn register(registry: &MetricsRegistry) -> Self {
        TxnStats {
            begins: registry.counter("dbms_txn_begins_total"),
            commits: registry.counter("dbms_txn_commits_total"),
            rollbacks: registry.counter("dbms_txn_rollbacks_total"),
            conflicts: registry.counter("dbms_txn_conflicts_total"),
        }
    }
}

/// Per-stage latency histograms of the server pipeline
/// (`dbms_stage_duration_microseconds{stage="..."}`), resolved once at
/// construction so recording is lock-free on the query path.
#[derive(Debug)]
struct PipelineTimers {
    parse: Arc<Histogram>,
    qs_build: Arc<Histogram>,
    guard: Arc<Histogram>,
    execute: Arc<Histogram>,
}

impl PipelineTimers {
    fn register(registry: &MetricsRegistry) -> Self {
        let stage = |name: &str| {
            registry.histogram(&format!(
                "dbms_stage_duration_microseconds{{stage=\"{name}\"}}"
            ))
        };
        PipelineTimers {
            parse: stage("parse"),
            qs_build: stage("qs_build"),
            guard: stage("guard"),
            execute: stage("execute"),
        }
    }
}

/// Microseconds elapsed since `t`, saturating (see
/// [`septic_telemetry::saturating_micros`]).
fn span_us(t: Instant) -> u64 {
    as_us(t.elapsed())
}

/// A duration as saturating microseconds.
fn as_us(d: Duration) -> u64 {
    septic_telemetry::saturating_micros(d)
}

/// Point-in-time snapshot of the server's degradation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatsSnapshot {
    /// Guard `inspect` calls that panicked (contained by the server).
    pub guard_panics: u64,
    /// Queries executed despite a guard failure (fail-open policy).
    pub fail_open_passes: u64,
    /// General-log entries dropped because the ring buffer was full.
    pub log_drops: u64,
}

/// Result of one client call (possibly several stacked statements).
#[derive(Debug, Clone, Default)]
pub struct ExecResult {
    /// Output per executed statement, in order.
    pub outputs: Vec<QueryOutput>,
    /// Wall-clock time spent in the pipeline.
    pub elapsed: Duration,
    /// Additional *simulated* latency requested by the query itself
    /// (`SLEEP`, `BENCHMARK`) — the time-based blind injection channel.
    pub simulated_delay: Duration,
}

impl ExecResult {
    /// The last statement's output (the result set a client API reports).
    #[must_use]
    pub fn last(&self) -> Option<&QueryOutput> {
        self.outputs.last()
    }

    /// Total latency a client would observe (wall + simulated).
    #[must_use]
    pub fn observed_latency(&self) -> Duration {
        self.elapsed + self.simulated_delay
    }
}

/// The DBMS server.
pub struct Server {
    db: RwLock<Database>,
    guard: RwLock<Option<SharedGuard>>,
    config: ServerConfig,
    clock: AtomicI64,
    /// Ring buffer bounded by `config.general_log_capacity`: the oldest
    /// entry is evicted (and counted in `stats.log_drops`) when full.
    general_log: Mutex<VecDeque<GeneralLogEntry>>,
    stats: ServerStats,
    /// Registry behind `stats` and `pipeline`; merged with the guard's
    /// own metrics in [`Server::metrics_snapshot`].
    metrics: MetricsRegistry,
    /// Per-stage pipeline latency histograms.
    pipeline: PipelineTimers,
    /// Total simulated delay (`SLEEP`/`BENCHMARK`) accumulated across all
    /// queries — the observable for time-based blind injection.
    simulated_total_micros: AtomicI64,
    /// Session-id allocator for [`Server::connect`].
    next_session: AtomicU64,
    /// Shape-keyed cache of compiled expression programs, shared by every
    /// session: compile once, execute many.
    program_cache: ProgramCache,
    /// Whether execution uses the bytecode VM (compiled WHERE/projection
    /// programs) or the interpreted AST walker.
    expr_vm: AtomicBool,
    /// Durability backend: every committed write batch is handed to it
    /// *before* the commit is acknowledged. The default [`NullBackend`]
    /// keeps the server purely in-memory (the differential oracle);
    /// [`Server::open_durable`] swaps in a [`WalStorage`].
    storage: RwLock<Arc<dyn StorageBackend>>,
    /// Transaction outcome counters.
    txn_stats: TxnStats,
}

impl Server {
    /// Creates a server with the default configuration and empty database.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Self::with_config(ServerConfig::default())
    }

    /// Creates a server with an explicit configuration.
    #[must_use]
    pub fn with_config(config: ServerConfig) -> Arc<Self> {
        Arc::new(Self::build(config))
    }

    fn build(config: ServerConfig) -> Server {
        let metrics = MetricsRegistry::new();
        let stats = ServerStats::register(&metrics);
        let txn_stats = TxnStats::register(&metrics);
        let pipeline = PipelineTimers::register(&metrics);
        let program_cache = ProgramCache::new();
        program_cache.attach_metrics(&metrics);
        Server {
            db: RwLock::new(Database::new()),
            guard: RwLock::new(None),
            config,
            clock: AtomicI64::new(1_000_000),
            general_log: Mutex::new(VecDeque::new()),
            stats,
            metrics,
            pipeline,
            simulated_total_micros: AtomicI64::new(0),
            next_session: AtomicU64::new(1),
            program_cache,
            expr_vm: AtomicBool::new(expr_vm_default()),
            storage: RwLock::new(Arc::new(NullBackend)),
            txn_stats,
        }
    }

    /// Opens a *durable* server on the given storage medium: loads the
    /// latest checkpoint snapshot (if any), replays the write-ahead log
    /// over it, and installs the recovered database plus the WAL backend
    /// so every later commit is logged before it is acknowledged.
    ///
    /// Returns the server together with the [`RecoveryReport`] describing
    /// what recovery found (records replayed, torn tails quarantined, …).
    /// A guard installed *after* this call has never seen the recovered
    /// data — run [`Server::scan_recovered`] to re-detect stored payloads.
    ///
    /// # Errors
    ///
    /// [`DbError::Storage`] when the medium cannot be read.
    pub fn open_durable(
        config: ServerConfig,
        io: Arc<dyn StorageIo>,
        wal_config: WalConfig,
    ) -> Result<(Arc<Self>, RecoveryReport), DbError> {
        let server = Self::with_config(config);
        let wal = WalStorage::new(io, wal_config, &server.metrics);
        let (db, report) = wal.recover()?;
        *server.db.write() = db;
        // Resume the logical clock past every replayed NOW(): recovered
        // timestamps must stay in the past.
        let floor = server.clock.load(Ordering::Relaxed);
        server
            .clock
            .store(floor.max(report.next_clock), Ordering::Relaxed);
        *server.storage.write() = Arc::new(wal);
        Ok((server, report))
    }

    /// Feeds every string cell of the current database to the installed
    /// guard's [`crate::guard::QueryGuard::scan_stored`] and returns how
    /// many it flagged. This is the post-recovery re-detection pass: a
    /// freshly deployed guard inspects data that was *stored* before it
    /// was installed (second-order payloads surviving a restart).
    /// Returns 0 when no guard is installed.
    #[must_use]
    pub fn scan_recovered(&self) -> usize {
        let Some(guard) = self.guard.read().clone() else {
            return 0;
        };
        let values: Vec<String> = {
            let db = self.db.read();
            let mut v = Vec::new();
            for table in db.tables_sorted() {
                for (_, row) in table.scan() {
                    for cell in row {
                        if let Value::Str(s) = cell {
                            v.push(s.clone());
                        }
                    }
                }
            }
            v
        };
        guard.scan_stored(&values)
    }

    /// Switches row-expression evaluation between the bytecode VM (`true`)
    /// and the interpreted AST walker (`false`, the differential oracle).
    pub fn set_expr_vm(&self, on: bool) {
        self.expr_vm.store(on, Ordering::Relaxed);
    }

    /// Whether execution currently uses the bytecode VM.
    #[must_use]
    pub fn expr_vm(&self) -> bool {
        self.expr_vm.load(Ordering::Relaxed)
    }

    /// The shared compiled-program cache (per-shape expression programs).
    #[must_use]
    pub fn vm_cache(&self) -> &ProgramCache {
        &self.program_cache
    }

    /// Test/bench hook: parses `sql` (a single `SELECT`) and returns the
    /// cached compiled program for its `WHERE` clause, compiling it on
    /// first sight. Lets tests assert `Arc::ptr_eq` program sharing
    /// across sessions.
    #[doc(hidden)]
    #[must_use]
    pub fn vm_program_for(&self, sql: &str) -> Option<Arc<septic_vm::Program>> {
        let parsed = parse(sql).ok()?;
        let stmt = parsed.statements.first()?;
        let db = self.db.read();
        where_program(&db, stmt, &self.program_cache)
    }

    /// Installs (or replaces) the pre-execution guard. Passing a SEPTIC
    /// instance here is the reproduction's analogue of recompiling MySQL
    /// with SEPTIC linked in.
    pub fn install_guard(&self, guard: SharedGuard) {
        *self.guard.write() = Some(guard);
    }

    /// Removes the guard (vanilla MySQL baseline).
    pub fn remove_guard(&self) {
        *self.guard.write() = None;
    }

    /// True when a guard is installed.
    #[must_use]
    pub fn has_guard(&self) -> bool {
        self.guard.read().is_some()
    }

    /// Opens a connection — a new session with its own id and counters.
    /// Sessions are independent: open one per thread and run them in
    /// parallel against the shared database and guard.
    #[must_use]
    pub fn connect(self: &Arc<Self>) -> Connection {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        Connection {
            server: Arc::clone(self),
            session: Arc::new(SessionState::new(id)),
        }
    }

    /// Snapshot of the general log.
    #[must_use]
    pub fn general_log(&self) -> Vec<GeneralLogEntry> {
        self.general_log.lock().iter().cloned().collect()
    }

    /// Snapshot of the degradation counters (guard panics, fail-open
    /// passes, general-log drops).
    #[must_use]
    pub fn stats(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            guard_panics: self.stats.guard_panics.get(),
            fail_open_passes: self.stats.fail_open_passes.get(),
            log_drops: self.stats.log_drops.get(),
        }
    }

    /// The server's own telemetry registry (pipeline stage timings and
    /// `dbms_*` degradation counters).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Merged metrics snapshot: the server's pipeline metrics plus
    /// whatever the installed guard reports via
    /// [`crate::guard::QueryGuard::metrics`] (for SEPTIC: the
    /// `septic_*` counters and stage histograms).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let guard = self.guard.read().clone();
        if let Some(guard_snap) = guard.and_then(|g| g.metrics()) {
            snap.extend(guard_snap);
        }
        snap
    }

    /// The merged metrics in Prometheus text exposition format.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    /// Clears the general log.
    pub fn clear_general_log(&self) {
        self.general_log.lock().clear();
    }

    /// Direct read access to the database (test/bench support).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.read())
    }

    /// Total simulated (`SLEEP`/`BENCHMARK`) delay the server has been
    /// asked for since start. Time-based blind probes observe deltas of
    /// this value — the deterministic stand-in for wall-clock stalls.
    #[must_use]
    pub fn simulated_delay_total(&self) -> Duration {
        Duration::from_micros(self.simulated_total_micros.load(Ordering::Relaxed).max(0) as u64)
    }

    /// Appends a general-log entry. The outcome is a closure so a dropped
    /// entry (capacity 0) costs a counter bump, not a `format!`.
    fn log(&self, at: i64, session: u64, sql: &str, outcome: impl FnOnce() -> String) {
        if self.config.general_log_capacity == 0 {
            self.stats.log_drops.inc();
            return;
        }
        let entry = GeneralLogEntry {
            at,
            session,
            sql: sql.to_string(),
            outcome: outcome(),
        };
        let mut log = self.general_log.lock();
        while log.len() >= self.config.general_log_capacity {
            log.pop_front();
            self.stats.log_drops.inc();
        }
        log.push_back(entry);
    }

    fn run(
        &self,
        session: &SessionState,
        raw_sql: &str,
        params: Option<&[Value]>,
    ) -> Result<ExecResult, DbError> {
        // Admin statements (`SHOW SEPTIC STATUS` / `SHOW SEPTIC METRICS`)
        // are answered from telemetry without entering the pipeline, so
        // they work even while the guard is blocking everything else.
        if params.is_none() {
            if let Some(result) = self.admin_statement(session, raw_sql) {
                session.queries_ok.fetch_add(1, Ordering::Relaxed);
                return Ok(result);
            }
        }
        let outcome = self.run_pipeline(session, raw_sql, params);
        match &outcome {
            Ok(res) => {
                session.queries_ok.fetch_add(1, Ordering::Relaxed);
                session
                    .busy_micros
                    .fetch_add(as_us(res.elapsed), Ordering::Relaxed);
                session
                    .observed_micros
                    .fetch_add(as_us(res.observed_latency()), Ordering::Relaxed);
            }
            Err(DbError::Blocked(_)) => {
                session.queries_blocked.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                session.queries_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Recognizes and answers the telemetry admin statements. Returns
    /// `None` for anything else (the statement then takes the normal
    /// pipeline).
    fn admin_statement(&self, session: &SessionState, raw_sql: &str) -> Option<ExecResult> {
        let started = Instant::now();
        let words: Vec<String> = raw_sql
            .trim()
            .trim_end_matches(';')
            .split_whitespace()
            .map(str::to_ascii_uppercase)
            .collect();
        let output = match words
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["SHOW", "SEPTIC", "STATUS"] => self.septic_status_output(session),
            ["SHOW", "SEPTIC", "METRICS"] => self.septic_metrics_output(),
            _ => return None,
        };
        Some(ExecResult {
            outputs: vec![output],
            elapsed: started.elapsed(),
            simulated_delay: Duration::ZERO,
        })
    }

    /// `SHOW SEPTIC STATUS`: two-column (`Variable_name`, `Value`) rows
    /// merging the guard's metrics, the server's pipeline metrics and
    /// the calling session's counters.
    fn septic_status_output(&self, session: &SessionState) -> QueryOutput {
        let mut rows: Vec<(String, String)> = Vec::new();
        let guard = self.guard.read().clone();
        rows.push((
            "guard_installed".into(),
            if guard.is_some() { "yes" } else { "no" }.into(),
        ));
        if let Some(guard) = &guard {
            rows.push(("guard_name".into(), guard.name().to_string()));
            if let Some(snap) = guard.metrics() {
                push_metric_rows(&mut rows, &snap);
            }
        }
        push_metric_rows(&mut rows, &self.metrics.snapshot());
        rows.push(("session_id".into(), session.id.to_string()));
        rows.push((
            "session_queries_ok".into(),
            session.queries_ok.load(Ordering::Relaxed).to_string(),
        ));
        rows.push((
            "session_queries_blocked".into(),
            session.queries_blocked.load(Ordering::Relaxed).to_string(),
        ));
        rows.push((
            "session_queries_failed".into(),
            session.queries_failed.load(Ordering::Relaxed).to_string(),
        ));
        rows.push((
            "session_busy_us".into(),
            session.busy_micros.load(Ordering::Relaxed).to_string(),
        ));
        rows.push((
            "session_observed_us".into(),
            session.observed_micros.load(Ordering::Relaxed).to_string(),
        ));
        QueryOutput {
            columns: vec!["Variable_name".into(), "Value".into()],
            rows: rows
                .into_iter()
                .map(|(k, v)| vec![Value::from(k.as_str()), Value::from(v.as_str())])
                .collect(),
            ..QueryOutput::default()
        }
    }

    /// `SHOW SEPTIC METRICS`: the merged Prometheus export, one text
    /// line per row — a scrape endpoint reachable through SQL.
    fn septic_metrics_output(&self) -> QueryOutput {
        QueryOutput {
            columns: vec!["metric".into()],
            rows: self
                .prometheus()
                .lines()
                .map(|line| vec![Value::from(line)])
                .collect(),
            ..QueryOutput::default()
        }
    }

    fn run_pipeline(
        &self,
        session_state: &SessionState,
        raw_sql: &str,
        params: Option<&[Value]>,
    ) -> Result<ExecResult, DbError> {
        let started = Instant::now();
        let session = session_state.id;
        let at = self.clock.fetch_add(1, Ordering::Relaxed);

        // 1. connection-charset decoding (the semantic-mismatch step).
        //    Prepared-statement *templates* are programmer text and decode
        //    harmlessly; bound values never pass through here.
        let decoded = charset::decode(raw_sql);

        // 2. parse
        let t = Instant::now();
        let parse_result = parse(&decoded.text);
        self.pipeline.parse.record_us(span_us(t));
        let mut parsed = match parse_result {
            Ok(p) => p,
            Err(e) => {
                self.log(at, session, raw_sql, || format!("error: {e}"));
                return Err(e.into());
            }
        };
        if parsed.statements.len() > 1 && (!self.config.allow_multi_statements || params.is_some())
        {
            let err = DbError::Semantic("multi-statement queries are disabled".into());
            self.log(at, session, raw_sql, || format!("error: {err}"));
            return Err(err);
        }

        // 2b. server-side parameter binding (prepared statements)
        if let Some(values) = params {
            for stmt in &mut parsed.statements {
                match crate::bind::bind_params(stmt, values) {
                    Ok(bound) => *stmt = bound,
                    Err(e) => {
                        self.log(at, session, raw_sql, || format!("error: {e}"));
                        return Err(e);
                    }
                }
            }
        }

        // 3. validate (DBMS-side name checks — runs before the guard, as in
        //    the paper's "Q received, parsed & validated by the DBMS").
        //    Inside an open transaction names resolve against its working
        //    snapshot: a table created in the transaction is visible to it.
        {
            let txn = session_state.txn.lock();
            let master;
            let view: &Database = match txn.as_ref() {
                Some(t) => &t.working,
                None => {
                    master = self.db.read();
                    &master
                }
            };
            for stmt in &parsed.statements {
                if let Err(e) = validate(view, stmt) {
                    self.log(at, session, raw_sql, || format!("error: {e}"));
                    return Err(e);
                }
            }
        }

        // 4. lower to the item stack (the QS build)
        let t = Instant::now();
        let stack = items::lower_all(&parsed.statements);
        self.pipeline.qs_build.record_us(span_us(t));

        // 5+6. guard (SEPTIC hook): user data of INSERT/UPDATE statements
        //       is gathered only when a guard is installed.
        let guard = self.guard.read().clone();
        if let Some(guard) = guard {
            let guard_started = Instant::now();
            let mut write_data: Vec<String> = Vec::new();
            for stmt in &parsed.statements {
                collect_write_data(stmt, &mut write_data);
            }
            let ctx = QueryContext {
                raw_sql,
                decoded_sql: &decoded.text,
                statements: &parsed.statements,
                stack: &stack,
                comments: &parsed.comments,
                trailing_line_comment: parsed.trailing_line_comment,
                write_data: &write_data,
            };
            // The guard runs inside `catch_unwind`: a buggy detector must
            // degrade per its failure policy, never crash the engine.
            let inspected = catch_unwind(AssertUnwindSafe(|| guard.inspect(&ctx)));
            self.pipeline.guard.record_us(span_us(guard_started));
            match inspected {
                Ok(GuardDecision::Proceed) => {}
                Ok(GuardDecision::Block(reason)) => {
                    self.log(at, session, raw_sql, || format!("blocked: {reason}"));
                    return Err(DbError::Blocked(reason));
                }
                Err(payload) => {
                    self.stats.guard_panics.inc();
                    let what = panic_message(payload.as_ref());
                    // The policy query runs isolated too — the guard that
                    // just panicked may panic again; then the safe default
                    // (fail-closed) applies.
                    let policy = catch_unwind(AssertUnwindSafe(|| guard.failure_policy()))
                        .unwrap_or(FailurePolicy::FailClosed);
                    match policy {
                        FailurePolicy::FailClosed => {
                            let reason = format!("guard '{}' panicked: {what}", guard.name());
                            self.log(at, session, raw_sql, || {
                                format!("guard failure (fail-closed): {what}")
                            });
                            return Err(DbError::GuardFailure(reason));
                        }
                        FailurePolicy::FailOpen => {
                            self.stats.fail_open_passes.inc();
                            self.log(at, session, raw_sql, || {
                                format!("guard failure (fail-open): {what}")
                            });
                        }
                    }
                }
            }
        }
        drop(stack);

        // 7. execute — pure-SELECT calls run under the shared read lock so
        //    parallel sessions overlap; autocommit writes serialize on the
        //    write lock (and reach the durability backend before being
        //    acknowledged); anything touching an open transaction runs
        //    against the session's MVCC snapshot instead.
        let t = Instant::now();
        let cache = self
            .expr_vm
            .load(Ordering::Relaxed)
            .then_some(&self.program_cache);
        let mut txn = session_state.txn.lock();
        let executed: Result<Vec<QueryOutput>, DbError> =
            if txn.is_some() || parsed.statements.iter().any(Statement::is_txn_control) {
                self.execute_transactional(&mut txn, &parsed.statements, at, cache)
            } else if parsed.statements.iter().all(is_read_only) {
                let db = self.db.read();
                parsed
                    .statements
                    .iter()
                    .map(|stmt| execute_read_with(&db, stmt, at, cache))
                    .collect()
            } else {
                self.execute_autocommit(&parsed.statements, at, cache)
            };
        drop(txn);
        self.pipeline.execute.record_us(span_us(t));
        let outputs = match executed {
            Ok(outputs) => outputs,
            Err(e) => {
                self.log(at, session, raw_sql, || format!("error: {e}"));
                return Err(e);
            }
        };
        let mut simulated = Duration::ZERO;
        for out in &outputs {
            let delay = Duration::from_secs_f64(out.effects.sleep_seconds);
            simulated += delay;
            self.simulated_total_micros
                .fetch_add(delay.as_micros() as i64, Ordering::Relaxed);
        }
        self.log(at, session, raw_sql, || "ok".to_string());
        Ok(ExecResult {
            outputs,
            elapsed: started.elapsed(),
            simulated_delay: simulated,
        })
    }

    /// Autocommit execution: each statement commits as it succeeds (MySQL
    /// semantics — in a stacked call, statements before a failing one keep
    /// their effects). The successful writes are handed to the durability
    /// backend *before* the call is acknowledged; if logging fails, the
    /// whole call is rolled back so the server never acknowledges state
    /// the WAL has not seen.
    fn execute_autocommit(
        &self,
        statements: &[Statement],
        at: i64,
        cache: Option<&ProgramCache>,
    ) -> Result<Vec<QueryOutput>, DbError> {
        let storage = self.storage.read().clone();
        let mut db = self.db.write();
        let prev = db.snapshot();
        let mut outputs = Vec::with_capacity(statements.len());
        let mut redo: Vec<WalStmt> = Vec::new();
        let mut failed: Option<DbError> = None;
        for stmt in statements {
            match execute_with(&mut db, stmt, at, cache) {
                Ok(out) => {
                    if !is_read_only(stmt) {
                        redo.push(WalStmt {
                            now: at,
                            sql: stmt.to_string(),
                        });
                    }
                    outputs.push(out);
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if !redo.is_empty() {
            if let Err(e) = storage.log_commit(redo) {
                *db = prev;
                return Err(e);
            }
            storage.after_commit(&db, at);
        }
        match failed {
            Some(e) => Err(e),
            None => Ok(outputs),
        }
    }

    /// Execution with transaction control in play: `BEGIN` snapshots the
    /// database, in-transaction statements run against the session's
    /// private snapshot (writes buffered for replay), `COMMIT` publishes
    /// and `ROLLBACK` discards. Each in-transaction statement is atomic:
    /// it runs on a scratch copy of the snapshot that is adopted only on
    /// success.
    fn execute_transactional(
        &self,
        txn: &mut Option<Txn>,
        statements: &[Statement],
        at: i64,
        cache: Option<&ProgramCache>,
    ) -> Result<Vec<QueryOutput>, DbError> {
        let mut outputs = Vec::with_capacity(statements.len());
        for stmt in statements {
            match stmt {
                Statement::Begin => {
                    // MySQL: starting a transaction implicitly commits
                    // the one already open.
                    if let Some(open) = txn.take() {
                        self.commit_txn(open)?;
                    }
                    *txn = Some(Txn {
                        working: self.db.read().snapshot(),
                        redo: Vec::new(),
                    });
                    self.txn_stats.begins.inc();
                    outputs.push(QueryOutput::default());
                }
                Statement::Commit => {
                    // COMMIT with no open transaction is a no-op (MySQL).
                    if let Some(open) = txn.take() {
                        self.commit_txn(open)?;
                    }
                    outputs.push(QueryOutput::default());
                }
                Statement::Rollback => {
                    if txn.take().is_some() {
                        self.txn_stats.rollbacks.inc();
                    }
                    outputs.push(QueryOutput::default());
                }
                other => {
                    if let Some(open) = txn.as_mut() {
                        if is_read_only(other) {
                            outputs.push(execute_read_with(&open.working, other, at, cache)?);
                        } else {
                            let mut scratch = open.working.snapshot();
                            let out = execute_with(&mut scratch, other, at, cache)?;
                            open.working = scratch;
                            open.redo.push(BufferedWrite {
                                stmt: other.clone(),
                                wal: WalStmt {
                                    now: at,
                                    sql: other.to_string(),
                                },
                            });
                            outputs.push(out);
                        }
                    } else {
                        // e.g. `COMMIT; SELECT 1` — past the control
                        // statements the session is back in autocommit.
                        outputs.extend(self.execute_autocommit(
                            std::slice::from_ref(other),
                            at,
                            cache,
                        )?);
                    }
                }
            }
        }
        Ok(outputs)
    }

    /// Publishes a transaction: re-executes its buffered writes against
    /// the *current* master database under the write lock (each with the
    /// `NOW()` it originally observed, so replay is deterministic), hands
    /// the batch to the durability backend, and only then swaps the new
    /// state in. A buffered write that no longer applies aborts the
    /// commit with [`DbError::TxnAborted`] and leaves the master
    /// untouched (first-committer-wins).
    fn commit_txn(&self, txn: Txn) -> Result<(), DbError> {
        if txn.redo.is_empty() {
            self.txn_stats.commits.inc();
            return Ok(());
        }
        let storage = self.storage.read().clone();
        let cache = self
            .expr_vm
            .load(Ordering::Relaxed)
            .then_some(&self.program_cache);
        let mut db = self.db.write();
        let mut working = db.snapshot();
        for buffered in &txn.redo {
            if let Err(e) = execute_with(&mut working, &buffered.stmt, buffered.wal.now, cache) {
                self.txn_stats.conflicts.inc();
                return Err(DbError::TxnAborted(format!(
                    "`{}` no longer applies: {e}",
                    buffered.wal.sql
                )));
            }
        }
        storage.log_commit(txn.redo.iter().map(|b| b.wal.clone()).collect())?;
        *db = working;
        storage.after_commit(&db, self.clock.load(Ordering::Relaxed));
        self.txn_stats.commits.inc();
        Ok(())
    }
}

impl Default for Server {
    fn default() -> Self {
        Self::build(ServerConfig::default())
    }
}

/// Formats a metrics snapshot as (`Variable_name`, `Value`) rows:
/// counters verbatim, histograms as `<base>_count` / `_p50_us` /
/// `_p95_us` / `_p99_us` with any `{stage="…"}` label folded into the
/// variable name.
fn push_metric_rows(rows: &mut Vec<(String, String)>, snap: &MetricsSnapshot) {
    for c in &snap.counters {
        rows.push((c.name.clone(), c.value.to_string()));
    }
    for h in &snap.histograms {
        let base = metric_base_name(&h.name);
        rows.push((format!("{base}_count"), h.count.to_string()));
        rows.push((format!("{base}_p50_us"), h.percentile_us(50.0).to_string()));
        rows.push((format!("{base}_p95_us"), h.percentile_us(95.0).to_string()));
        rows.push((format!("{base}_p99_us"), h.percentile_us(99.0).to_string()));
    }
}

/// `septic_stage_duration_microseconds{stage="inspect"}` →
/// `septic_stage_inspect`; label-less names pass through unchanged.
fn metric_base_name(name: &str) -> String {
    let family = name.split('{').next().unwrap_or(name);
    match label_value(name, "stage") {
        Some(stage) => format!(
            "{}_{stage}",
            family.trim_end_matches("_duration_microseconds")
        ),
        None => family.to_string(),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("has_guard", &self.has_guard())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Extracts string literals from `INSERT`/`UPDATE` statements (the user
/// inputs stored-injection plugins scan).
fn collect_write_data(stmt: &Statement, out: &mut Vec<String>) {
    match stmt {
        Statement::Insert(i) => {
            if let InsertSource::Values(rows) = &i.source {
                for row in rows {
                    for e in row {
                        let mut lits = Vec::new();
                        e.collect_string_literals(&mut lits);
                        out.extend(lits.into_iter().map(String::from));
                    }
                }
            }
        }
        Statement::Update(u) => {
            for (_, e) in &u.assignments {
                let mut lits = Vec::new();
                e.collect_string_literals(&mut lits);
                out.extend(lits.into_iter().map(String::from));
            }
        }
        _ => {}
    }
}

/// A client connection to a [`Server`] — one *session*. Cloning shares the
/// session (id and counters); call [`Server::connect`] again for a fresh
/// session. Sessions are `Send`: move each to its own thread for a
/// session-per-thread front end over the shared database and guard.
#[derive(Clone)]
pub struct Connection {
    server: Arc<Server>,
    session: Arc<SessionState>,
}

impl Connection {
    /// Runs a query through the full pipeline.
    ///
    /// # Errors
    ///
    /// Parse, validation, constraint, runtime errors — or
    /// [`DbError::Blocked`] when the guard drops the query.
    pub fn execute(&self, sql: &str) -> Result<ExecResult, DbError> {
        self.server.run(&self.session, sql, None)
    }

    /// Runs a prepared statement: `?` placeholders in the template are
    /// bound server-side to `params` — the values never enter query text,
    /// so neither charset decoding nor quote processing applies to them.
    ///
    /// # Errors
    ///
    /// As [`Connection::execute`], plus parameter-count mismatches.
    pub fn execute_prepared(&self, sql: &str, params: &[Value]) -> Result<ExecResult, DbError> {
        self.server.run(&self.session, sql, Some(params))
    }

    /// Convenience: prepared execution returning the last output.
    ///
    /// # Errors
    ///
    /// As [`Connection::execute_prepared`].
    pub fn query_prepared(&self, sql: &str, params: &[Value]) -> Result<QueryOutput, DbError> {
        let mut result = self.server.run(&self.session, sql, Some(params))?;
        Ok(result.outputs.pop().unwrap_or_default())
    }

    /// Convenience: run and return the last statement's output.
    ///
    /// # Errors
    ///
    /// As [`Connection::execute`].
    pub fn query(&self, sql: &str) -> Result<QueryOutput, DbError> {
        let mut result = self.server.run(&self.session, sql, None)?;
        Ok(result.outputs.pop().unwrap_or_default())
    }

    /// This session's id (stamped on its general-log entries).
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session.id
    }

    /// True while this session has an open transaction (`BEGIN` seen,
    /// no `COMMIT`/`ROLLBACK` yet).
    #[must_use]
    pub fn in_transaction(&self) -> bool {
        self.session.txn.lock().is_some()
    }

    /// Snapshot of this session's outcome counters.
    #[must_use]
    pub fn session_stats(&self) -> SessionSnapshot {
        SessionSnapshot {
            id: self.session.id,
            queries_ok: self.session.queries_ok.load(Ordering::Relaxed),
            queries_blocked: self.session.queries_blocked.load(Ordering::Relaxed),
            queries_failed: self.session.queries_failed.load(Ordering::Relaxed),
            busy_us: self.session.busy_micros.load(Ordering::Relaxed),
            observed_us: self.session.observed_micros.load(Ordering::Relaxed),
        }
    }

    /// The server this connection talks to.
    #[must_use]
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{AllowAll, FailurePolicy, GuardDecision, QueryGuard};
    use crate::value::Value;

    #[test]
    fn end_to_end_pipeline() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v VARCHAR(8))")
            .unwrap();
        conn.execute("INSERT INTO t (v) VALUES ('a')").unwrap();
        let out = conn.query("SELECT v FROM t WHERE id = 1").unwrap();
        assert_eq!(out.scalar(), Some(&Value::from("a")));
    }

    #[test]
    fn charset_decoding_happens_before_parse() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT, v VARCHAR(20))")
            .unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
            .unwrap();
        // U+02BC closes the string at the DBMS even though the app saw no
        // ASCII quote; the `-- ` comments out the tail.
        let out = conn
            .query("SELECT v FROM t WHERE v = 'x\u{02BC} OR 1=1-- '")
            .unwrap();
        // 'x' OR 1=1 → tautology matches the row.
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn guard_block_drops_query() {
        struct DenySelect;
        impl QueryGuard for DenySelect {
            fn inspect(&self, ctx: &QueryContext<'_>) -> GuardDecision {
                if ctx.command() == "SELECT" {
                    GuardDecision::Block("no selects".into())
                } else {
                    GuardDecision::Proceed
                }
            }
        }
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        server.install_guard(Arc::new(DenySelect));
        conn.execute("INSERT INTO t (id) VALUES (1)").unwrap();
        let err = conn.execute("SELECT * FROM t").unwrap_err();
        assert!(matches!(err, DbError::Blocked(_)));
        // The blocked query never executed; the table still has one row.
        server.remove_guard();
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn guard_sees_write_data() {
        struct Capture(Mutex<Vec<String>>);
        impl QueryGuard for Capture {
            fn inspect(&self, ctx: &QueryContext<'_>) -> GuardDecision {
                self.0.lock().extend(ctx.write_data.iter().cloned());
                GuardDecision::Proceed
            }
        }
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (a VARCHAR(64), b VARCHAR(64))")
            .unwrap();
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        server.install_guard(cap.clone());
        conn.execute("INSERT INTO t (a, b) VALUES ('<script>x</script>', 'ok')")
            .unwrap();
        conn.execute("UPDATE t SET a = 'new' WHERE b = 'filter-not-captured'")
            .unwrap();
        let seen = cap.0.lock().clone();
        assert!(seen.contains(&"<script>x</script>".to_string()));
        assert!(seen.contains(&"new".to_string()));
        // WHERE-clause literals of UPDATE are not write data.
        assert!(!seen.contains(&"filter-not-captured".to_string()));
    }

    #[test]
    fn multi_statement_toggle() {
        let server = Server::with_config(ServerConfig {
            allow_multi_statements: false,
            ..ServerConfig::default()
        });
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        let err = conn.execute("SELECT 1; SELECT 2").unwrap_err();
        assert!(matches!(err, DbError::Semantic(_)));
        let server = Server::new();
        let conn = server.connect();
        let res = conn.execute("SELECT 1; SELECT 2").unwrap();
        assert_eq!(res.outputs.len(), 2);
    }

    #[test]
    fn general_log_records_outcomes() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        conn.execute("INSERT INTO t (id) VALUES (1)").unwrap();
        let _ = conn.execute("SELECT broken FROM t");
        server.install_guard(Arc::new(AllowAll));
        conn.execute("SELECT * FROM t").unwrap();
        let log = server.general_log();
        assert_eq!(log.len(), 4);
        assert_eq!(log[0].outcome, "ok");
        assert!(log[2].outcome.starts_with("error"));
        assert_eq!(log[3].outcome, "ok");
        server.clear_general_log();
        assert!(server.general_log().is_empty());
    }

    #[test]
    fn sleep_reports_simulated_delay_without_blocking() {
        let server = Server::new();
        let conn = server.connect();
        let before = server.simulated_delay_total();
        let res = conn.execute("SELECT SLEEP(5)").unwrap();
        assert_eq!(res.simulated_delay, Duration::from_secs(5));
        assert_eq!(
            server.simulated_delay_total() - before,
            Duration::from_secs(5)
        );
        // Wall time is far below the simulated delay — we did not block.
        assert!(res.elapsed < Duration::from_secs(1));
        assert!(res.observed_latency() >= Duration::from_secs(5));
    }

    #[test]
    fn prepared_statements_bind_server_side() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v VARCHAR(40))")
            .unwrap();
        // A value full of SQL syntax is stored verbatim: it never enters
        // query text.
        let payload = "x' OR 1=1; DROP TABLE t-- ";
        conn.execute_prepared("INSERT INTO t (v) VALUES (?)", &[Value::from(payload)])
            .unwrap();
        let out = conn
            .query_prepared("SELECT v FROM t WHERE v = ?", &[Value::from(payload)])
            .unwrap();
        assert_eq!(out.scalar(), Some(&Value::from(payload)));
    }

    #[test]
    fn prepared_statements_preserve_homoglyphs() {
        // The second-order setup: U+02BC survives storage through a
        // prepared INSERT (no charset decoding applies to bound values)…
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE devices (name VARCHAR(40))")
            .unwrap();
        let stored = "ID34FG\u{02BC}-- ";
        conn.execute_prepared(
            "INSERT INTO devices (name) VALUES (?)",
            &[Value::from(stored)],
        )
        .unwrap();
        let out = conn.query("SELECT name FROM devices").unwrap();
        assert_eq!(out.scalar(), Some(&Value::from(stored)));
        // …whereas embedding the same bytes in query text would have been
        // folded (and here, broken the statement).
        assert!(conn
            .execute(&format!("INSERT INTO devices (name) VALUES ('{stored}')"))
            .is_err());
    }

    #[test]
    fn prepared_rejects_stacked_statements() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        assert!(conn.execute_prepared("SELECT 1; SELECT 2", &[]).is_err());
    }

    #[test]
    fn general_log_capacity_is_a_ring_buffer_bound() {
        let server = Server::with_config(ServerConfig {
            general_log_capacity: 3,
            ..ServerConfig::default()
        });
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..5 {
            conn.execute(&format!("INSERT INTO t (id) VALUES ({i})"))
                .unwrap();
        }
        let log = server.general_log();
        // Exactly `capacity` entries survive, and they are the *newest*.
        assert_eq!(log.len(), 3);
        assert!(log[0].sql.contains("VALUES (2)"));
        assert!(log[2].sql.contains("VALUES (4)"));
        // 6 statements were logged (CREATE + 5 INSERTs); 3 were evicted.
        assert_eq!(server.stats().log_drops, 3);
    }

    #[test]
    fn zero_log_capacity_drops_everything() {
        let server = Server::with_config(ServerConfig {
            general_log_capacity: 0,
            ..ServerConfig::default()
        });
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        assert!(server.general_log().is_empty());
        assert_eq!(server.stats().log_drops, 1);
    }

    struct PanickyGuard(FailurePolicy);
    impl QueryGuard for PanickyGuard {
        fn inspect(&self, _ctx: &QueryContext<'_>) -> GuardDecision {
            panic!("injected guard bug")
        }
        fn name(&self) -> &str {
            "panicky"
        }
        fn failure_policy(&self) -> FailurePolicy {
            self.0
        }
    }

    #[test]
    fn guard_panic_fail_closed_blocks_but_server_survives() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        server.install_guard(Arc::new(PanickyGuard(FailurePolicy::FailClosed)));
        let err = conn.execute("INSERT INTO t (id) VALUES (1)").unwrap_err();
        assert!(matches!(err, DbError::GuardFailure(_)));
        assert!(err.to_string().contains("injected guard bug"));
        assert_eq!(server.stats().guard_panics, 1);
        assert_eq!(server.stats().fail_open_passes, 0);
        // The engine keeps serving: remove the broken guard and query.
        server.remove_guard();
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(0))
        );
    }

    #[test]
    fn guard_panic_fail_open_executes_and_counts() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        server.install_guard(Arc::new(PanickyGuard(FailurePolicy::FailOpen)));
        conn.execute("INSERT INTO t (id) VALUES (1)").unwrap();
        assert_eq!(server.stats().guard_panics, 1);
        assert_eq!(server.stats().fail_open_passes, 1);
        let log = server.general_log();
        assert!(log
            .iter()
            .any(|e| e.outcome.contains("guard failure (fail-open)")));
        server.remove_guard();
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn sessions_get_distinct_ids_and_counters() {
        let server = Server::new();
        let a = server.connect();
        let b = server.connect();
        assert_ne!(a.session_id(), b.session_id());
        a.execute("CREATE TABLE t (id INT)").unwrap();
        a.execute("INSERT INTO t (id) VALUES (1)").unwrap();
        let _ = b.execute("SELECT broken FROM t");
        b.execute("SELECT * FROM t").unwrap();
        let sa = a.session_stats();
        let sb = b.session_stats();
        assert_eq!((sa.queries_ok, sa.queries_failed), (2, 0));
        assert_eq!((sb.queries_ok, sb.queries_failed), (1, 1));
        // The general log records which session each query came from.
        let log = server.general_log();
        assert!(log.iter().any(|e| e.session == a.session_id()));
        assert!(log.iter().any(|e| e.session == b.session_id()));
    }

    #[test]
    fn blocked_queries_count_per_session() {
        struct DenyAll;
        impl QueryGuard for DenyAll {
            fn inspect(&self, _: &QueryContext<'_>) -> GuardDecision {
                GuardDecision::Block("no".into())
            }
        }
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT)").unwrap();
        server.install_guard(Arc::new(DenyAll));
        assert!(conn.execute("SELECT * FROM t").is_err());
        assert_eq!(conn.session_stats().queries_blocked, 1);
        assert_eq!(conn.session_stats().queries_ok, 1);
    }

    #[test]
    fn parallel_sessions_share_the_database() {
        let server = Server::new();
        let setup = server.connect();
        setup.execute("CREATE TABLE t (id INT)").unwrap();
        setup.execute("INSERT INTO t (id) VALUES (7)").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let conn = server.connect();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let out = conn.query("SELECT COUNT(*) FROM t").unwrap();
                        assert_eq!(out.scalar(), Some(&Value::Int(1)));
                    }
                    conn.session_stats()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().queries_ok, 50);
        }
    }

    #[test]
    fn begin_commit_publishes_rollback_discards() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(8))")
            .unwrap();
        conn.execute("BEGIN").unwrap();
        assert!(conn.in_transaction());
        conn.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
            .unwrap();
        // Visible inside the transaction, not outside.
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
        let other = server.connect();
        assert_eq!(
            other.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(0))
        );
        conn.execute("COMMIT").unwrap();
        assert!(!conn.in_transaction());
        assert_eq!(
            other.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
        // ROLLBACK discards.
        conn.execute("START TRANSACTION").unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (2, 'b')")
            .unwrap();
        conn.execute("ROLLBACK").unwrap();
        assert_eq!(
            other.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn txn_reads_are_repeatable_snapshots() {
        let server = Server::new();
        let a = server.connect();
        let b = server.connect();
        a.execute("CREATE TABLE t (id INT)").unwrap();
        a.execute("BEGIN").unwrap();
        b.execute("INSERT INTO t (id) VALUES (7)").unwrap();
        // A's snapshot was taken at BEGIN: B's later write is invisible.
        assert_eq!(
            a.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(0))
        );
        a.execute("COMMIT").unwrap();
        assert_eq!(
            a.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn failed_statement_inside_txn_is_atomic() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t (id) VALUES (1)").unwrap();
        // Multi-row insert whose second row collides: the whole statement
        // must leave the transaction snapshot untouched.
        let err = conn
            .execute("INSERT INTO t (id) VALUES (2), (1)")
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey(_)));
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(1))
        );
        // The transaction is still usable and commits cleanly.
        conn.execute("INSERT INTO t (id) VALUES (3)").unwrap();
        conn.execute("COMMIT").unwrap();
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Int(2))
        );
    }

    #[test]
    fn conflicting_commit_aborts_first_committer_wins() {
        let server = Server::new();
        let a = server.connect();
        let b = server.connect();
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(8))")
            .unwrap();
        a.execute("BEGIN").unwrap();
        a.execute("INSERT INTO t (id, v) VALUES (1, 'a')").unwrap();
        // B commits the same key first (autocommit).
        b.execute("INSERT INTO t (id, v) VALUES (1, 'b')").unwrap();
        let err = a.execute("COMMIT").unwrap_err();
        assert!(matches!(err, DbError::TxnAborted(_)), "{err}");
        assert!(!a.in_transaction());
        // B's row survived; A's was discarded.
        assert_eq!(
            b.query("SELECT v FROM t WHERE id = 1").unwrap().scalar(),
            Some(&Value::from("b"))
        );
        let snap = server.metrics_snapshot();
        let conflicts = snap
            .counters
            .iter()
            .find(|c| c.name == "dbms_txn_conflicts_total")
            .map(|c| c.value);
        assert_eq!(conflicts, Some(1));
    }

    #[test]
    fn ddl_inside_txn_validates_against_working_snapshot() {
        let server = Server::new();
        let conn = server.connect();
        conn.execute("BEGIN").unwrap();
        conn.execute("CREATE TABLE staged (id INT)").unwrap();
        // The table exists only in the transaction's snapshot, yet the
        // INSERT validates and executes there.
        conn.execute("INSERT INTO staged (id) VALUES (1)").unwrap();
        let other = server.connect();
        assert!(other.execute("SELECT * FROM staged").is_err());
        conn.execute("COMMIT").unwrap();
        assert_eq!(
            other.query("SELECT COUNT(*) FROM staged").unwrap().scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn durable_server_recovers_data_and_transactions() {
        let io = crate::wal::MemIo::new();
        let (server, report) = Server::open_durable(
            ServerConfig::default(),
            io.clone(),
            crate::wal::WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.replayed_records, 0);
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(64))")
            .unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (1, 'kept')")
            .unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (2, 'committed')")
            .unwrap();
        conn.execute("COMMIT").unwrap();
        conn.execute("BEGIN").unwrap();
        conn.execute("INSERT INTO t (id, v) VALUES (3, 'discarded')")
            .unwrap();
        conn.execute("ROLLBACK").unwrap();
        drop(conn);
        drop(server);

        // "Restart": a fresh server over the same medium.
        let (revived, report) = Server::open_durable(
            ServerConfig::default(),
            io,
            crate::wal::WalConfig::default(),
        )
        .unwrap();
        assert!(report.replayed_records >= 2);
        assert_eq!(report.torn_records, 0);
        let conn = revived.connect();
        let out = conn.query("SELECT v FROM t ORDER BY id").unwrap();
        assert_eq!(
            out.rows,
            vec![vec![Value::from("kept")], vec![Value::from("committed")]]
        );
    }

    #[test]
    fn scan_recovered_feeds_string_cells_to_the_guard() {
        struct StoredScanner(Mutex<Vec<String>>);
        impl QueryGuard for StoredScanner {
            fn inspect(&self, _: &QueryContext<'_>) -> GuardDecision {
                GuardDecision::Proceed
            }
            fn scan_stored(&self, values: &[String]) -> usize {
                self.0.lock().extend(values.iter().cloned());
                values.iter().filter(|v| v.contains("OR 1=1")).count()
            }
        }
        let server = Server::new();
        let conn = server.connect();
        conn.execute("CREATE TABLE t (id INT, v VARCHAR(64))")
            .unwrap();
        conn.execute_prepared(
            "INSERT INTO t (id, v) VALUES (1, ?)",
            &[Value::from("x' OR 1=1-- ")],
        )
        .unwrap();
        // No guard installed: nothing to scan with.
        assert_eq!(server.scan_recovered(), 0);
        let scanner = Arc::new(StoredScanner(Mutex::new(Vec::new())));
        server.install_guard(scanner.clone());
        assert_eq!(server.scan_recovered(), 1);
        assert!(scanner.0.lock().iter().any(|v| v == "x' OR 1=1-- "));
    }

    #[test]
    fn validation_precedes_guard() {
        struct Panic;
        impl QueryGuard for Panic {
            fn inspect(&self, _: &QueryContext<'_>) -> GuardDecision {
                panic!("guard must not run for invalid queries")
            }
        }
        let server = Server::new();
        server.install_guard(Arc::new(Panic));
        let conn = server.connect();
        let err = conn.execute("SELECT * FROM missing").unwrap_err();
        assert!(matches!(err, DbError::UnknownTable(_)));
    }
}
