//! Scalar SQL function implementations (the non-aggregate builtins).

use crate::error::DbError;
use crate::value::Value;

/// Outcome side effects of evaluating scalar functions that do more than
/// compute a value (currently `SLEEP`/`BENCHMARK`, which time-based blind
/// injection payloads rely on).
#[derive(Debug, Default, Clone)]
pub struct SideEffects {
    /// Total seconds of `SLEEP()` the query requested. The server adds this
    /// to the reported latency instead of actually blocking the thread.
    pub sleep_seconds: f64,
}

/// Evaluates a scalar builtin over already-evaluated arguments.
///
/// # Errors
///
/// [`DbError::Runtime`] for unknown functions or arity violations.
pub fn call_scalar(
    name: &str,
    args: &[Value],
    now: i64,
    effects: &mut SideEffects,
) -> Result<Value, DbError> {
    let need = |n: usize| -> Result<(), DbError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(DbError::Runtime(format!(
                "{name}() expects {n} arguments, got {}",
                args.len()
            )))
        }
    };
    match name {
        "CONCAT" => {
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            Ok(Value::Str(
                args.iter().map(Value::to_display_string).collect(),
            ))
        }
        "CONCAT_WS" => {
            if args.is_empty() {
                return Err(DbError::Runtime("CONCAT_WS() needs a separator".into()));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let sep = args[0].to_display_string();
            let parts: Vec<String> = args[1..]
                .iter()
                .filter(|v| !v.is_null())
                .map(Value::to_display_string)
                .collect();
            Ok(Value::Str(parts.join(&sep)))
        }
        "LENGTH" | "CHAR_LENGTH" | "CHARACTER_LENGTH" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => Value::Int(v.to_display_string().chars().count() as i64),
            })
        }
        "UPPER" | "UCASE" => {
            need(1)?;
            Ok(map_str(&args[0], |s| s.to_uppercase()))
        }
        "LOWER" | "LCASE" => {
            need(1)?;
            Ok(map_str(&args[0], |s| s.to_lowercase()))
        }
        "TRIM" => {
            need(1)?;
            Ok(map_str(&args[0], |s| s.trim().to_string()))
        }
        "LTRIM" => {
            need(1)?;
            Ok(map_str(&args[0], |s| s.trim_start().to_string()))
        }
        "RTRIM" => {
            need(1)?;
            Ok(map_str(&args[0], |s| s.trim_end().to_string()))
        }
        "REVERSE" => {
            need(1)?;
            Ok(map_str(&args[0], |s| s.chars().rev().collect()))
        }
        "REPLACE" => {
            need(3)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = args[0].to_display_string();
            Ok(Value::Str(s.replace(
                &args[1].to_display_string(),
                &args[2].to_display_string(),
            )))
        }
        "SUBSTRING" | "SUBSTR" | "MID" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(DbError::Runtime(format!(
                    "{name}() expects 2 or 3 arguments, got {}",
                    args.len()
                )));
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s: Vec<char> = args[0].to_display_string().chars().collect();
            let pos = args[1].to_int().unwrap_or(0);
            // MySQL: 1-based; negative counts from the end; 0 yields empty.
            let start = if pos > 0 {
                (pos - 1) as usize
            } else if pos < 0 {
                s.len().saturating_sub((-pos) as usize)
            } else {
                return Ok(Value::Str(String::new()));
            };
            let len = match args.get(2) {
                Some(v) => {
                    let l = v.to_int().unwrap_or(0);
                    if l <= 0 {
                        return Ok(Value::Str(String::new()));
                    }
                    l as usize
                }
                None => usize::MAX,
            };
            Ok(Value::Str(s.iter().skip(start).take(len).collect()))
        }
        "LEFT" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let n = args[1].to_int().unwrap_or(0).max(0) as usize;
            Ok(Value::Str(
                args[0].to_display_string().chars().take(n).collect(),
            ))
        }
        "RIGHT" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s: Vec<char> = args[0].to_display_string().chars().collect();
            let n = (args[1].to_int().unwrap_or(0).max(0) as usize).min(s.len());
            Ok(Value::Str(s[s.len() - n..].iter().collect()))
        }
        "ABS" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(v) => Value::Int(v.abs()),
                v => Value::Real(v.to_real().unwrap_or(0.0).abs()),
            })
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(DbError::Runtime("ROUND() expects 1 or 2 arguments".into()));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let v = args[0].to_real().unwrap_or(0.0);
            let d = args.get(1).and_then(Value::to_int).unwrap_or(0);
            let m = 10f64.powi(d as i32);
            let r = (v * m).round() / m;
            Ok(if d <= 0 {
                Value::Int(r as i64)
            } else {
                Value::Real(r)
            })
        }
        "FLOOR" => {
            need(1)?;
            Ok(num_to_int(&args[0], f64::floor))
        }
        "CEIL" | "CEILING" => {
            need(1)?;
            Ok(num_to_int(&args[0], f64::ceil))
        }
        "MOD" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let b = args[1].to_real().unwrap_or(0.0);
            if b == 0.0 {
                return Ok(Value::Null);
            }
            let a = args[0].to_real().unwrap_or(0.0);
            Ok(Value::Real(a % b))
        }
        "COALESCE" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "IFNULL" => {
            need(2)?;
            Ok(if args[0].is_null() {
                args[1].clone()
            } else {
                args[0].clone()
            })
        }
        "NULLIF" => {
            need(2)?;
            Ok(if args[0].sql_eq(&args[1]) == Some(true) {
                Value::Null
            } else {
                args[0].clone()
            })
        }
        "IF" => {
            need(3)?;
            Ok(if args[0].is_truthy() {
                args[1].clone()
            } else {
                args[2].clone()
            })
        }
        "GREATEST" => fold_extreme(args, true),
        "LEAST" => fold_extreme(args, false),
        "NOW" | "CURRENT_TIMESTAMP" | "SYSDATE" | "UNIX_TIMESTAMP" => Ok(Value::Int(now)),
        "VERSION" => Ok(Value::from("5.7.0-septic-sim")),
        "DATABASE" | "SCHEMA" => Ok(Value::from("app")),
        "USER" | "CURRENT_USER" => Ok(Value::from("webapp@localhost")),
        "MD5" | "SHA1" | "SHA" | "PASSWORD" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => Value::Str(pseudo_digest(name, &v.to_display_string())),
            })
        }
        "HEX" => {
            need(1)?;
            Ok(map_str(&args[0], |s| {
                s.bytes().map(|b| format!("{b:02X}")).collect::<String>()
            }))
        }
        "ASCII" | "ORD" => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => Value::Int(v.to_display_string().bytes().next().map_or(0, i64::from)),
            })
        }
        "CHAR" => {
            // CHAR(65, 66) -> "AB" — beloved by obfuscated payloads.
            let mut s = String::new();
            for a in args {
                if let Some(code) = a.to_int() {
                    if let Some(c) = char::from_u32((code as u32) & 0xff) {
                        s.push(c);
                    }
                }
            }
            Ok(Value::Str(s))
        }
        "SLEEP" => {
            need(1)?;
            effects.sleep_seconds += args[0].to_real().unwrap_or(0.0).max(0.0);
            Ok(Value::Int(0))
        }
        "BENCHMARK" => {
            need(2)?;
            // Model BENCHMARK(n, expr) cost as n microseconds.
            let n = args[0].to_real().unwrap_or(0.0).max(0.0);
            effects.sleep_seconds += n * 1e-6;
            Ok(Value::Int(0))
        }
        "INSTR" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let hay = args[0].to_display_string().to_lowercase();
            let needle = args[1].to_display_string().to_lowercase();
            Ok(Value::Int(find_one_based(&hay, &needle)))
        }
        "LOCATE" | "POSITION" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            // LOCATE(substr, str) — argument order is reversed vs INSTR.
            let needle = args[0].to_display_string().to_lowercase();
            let hay = args[1].to_display_string().to_lowercase();
            Ok(Value::Int(find_one_based(&hay, &needle)))
        }
        "LPAD" | "RPAD" => {
            need(3)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s: Vec<char> = args[0].to_display_string().chars().collect();
            let target = args[1].to_int().unwrap_or(0).max(0) as usize;
            let pad: Vec<char> = args[2].to_display_string().chars().collect();
            if target <= s.len() {
                return Ok(Value::Str(s[..target].iter().collect()));
            }
            if pad.is_empty() {
                return Ok(Value::Null); // MySQL returns NULL for empty pad
            }
            let mut fill: Vec<char> = Vec::with_capacity(target - s.len());
            while fill.len() < target - s.len() {
                fill.push(pad[fill.len() % pad.len()]);
            }
            let out: String = if name == "LPAD" {
                fill.into_iter().chain(s).collect()
            } else {
                s.into_iter().chain(fill).collect()
            };
            Ok(Value::Str(out))
        }
        "REPEAT" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let n = args[1].to_int().unwrap_or(0);
            if n <= 0 {
                return Ok(Value::Str(String::new()));
            }
            // Cap like MySQL's max_allowed_packet would.
            let n = (n as usize).min(1 << 20);
            Ok(Value::Str(args[0].to_display_string().repeat(n)))
        }
        "SPACE" => {
            need(1)?;
            let n = args[0].to_int().unwrap_or(0).max(0) as usize;
            Ok(Value::Str(" ".repeat(n.min(1 << 20))))
        }
        "STRCMP" => {
            need(2)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            Ok(Value::Int(match args[0].sql_cmp(&args[1]) {
                Some(std::cmp::Ordering::Less) => -1,
                Some(std::cmp::Ordering::Greater) => 1,
                _ => 0,
            }))
        }
        "SIGN" => {
            need(1)?;
            Ok(match args[0].to_real() {
                None => Value::Null,
                Some(v) if v > 0.0 => Value::Int(1),
                Some(v) if v < 0.0 => Value::Int(-1),
                Some(_) => Value::Int(0),
            })
        }
        "POW" | "POWER" => {
            need(2)?;
            match (args[0].to_real(), args[1].to_real()) {
                (Some(a), Some(b)) => Ok(Value::Real(a.powf(b))),
                _ => Ok(Value::Null),
            }
        }
        "SQRT" => {
            need(1)?;
            Ok(match args[0].to_real() {
                None => Value::Null,
                Some(v) if v < 0.0 => Value::Null,
                Some(v) => Value::Real(v.sqrt()),
            })
        }
        "TRUNCATE" => {
            need(2)?;
            match (args[0].to_real(), args[1].to_int()) {
                (Some(v), Some(d)) => {
                    let m = 10f64.powi(d as i32);
                    Ok(Value::Real((v * m).trunc() / m))
                }
                _ => Ok(Value::Null),
            }
        }
        "BIN" => {
            need(1)?;
            Ok(match args[0].to_int() {
                None => Value::Null,
                Some(v) => Value::Str(format!("{v:b}")),
            })
        }
        "OCT" => {
            need(1)?;
            Ok(match args[0].to_int() {
                None => Value::Null,
                Some(v) => Value::Str(format!("{v:o}")),
            })
        }
        "ELT" => {
            // ELT(n, a, b, c) — the n-th argument, 1-based.
            if args.len() < 2 {
                return Err(DbError::Runtime("ELT() needs an index and values".into()));
            }
            let n = args[0].to_int().unwrap_or(0);
            if n < 1 || (n as usize) >= args.len() {
                return Ok(Value::Null);
            }
            Ok(args[n as usize].clone())
        }
        "FIELD" => {
            // FIELD(needle, a, b, c) — 1-based index of needle, 0 if absent.
            if args.is_empty() {
                return Err(DbError::Runtime("FIELD() needs arguments".into()));
            }
            if args[0].is_null() {
                return Ok(Value::Int(0));
            }
            for (i, candidate) in args[1..].iter().enumerate() {
                if args[0].sql_eq(candidate) == Some(true) {
                    return Ok(Value::Int(i as i64 + 1));
                }
            }
            Ok(Value::Int(0))
        }
        "RAND" => Ok(Value::Real(0.42)), // deterministic stand-in
        "LAST_INSERT_ID" => Ok(Value::Int(0)),
        other => Err(DbError::Runtime(format!("unknown function {other}()"))),
    }
}

/// Names the executor treats as aggregates rather than scalars.
#[must_use]
pub fn is_aggregate(name: &str) -> bool {
    matches!(
        name,
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "GROUP_CONCAT"
    )
}

/// 1-based position of `needle` in `hay`; 0 when absent (MySQL INSTR).
fn find_one_based(hay: &str, needle: &str) -> i64 {
    if needle.is_empty() {
        return 1;
    }
    match hay.find(needle) {
        Some(byte_pos) => hay[..byte_pos].chars().count() as i64 + 1,
        None => 0,
    }
}

fn map_str(v: &Value, f: impl FnOnce(&str) -> String) -> Value {
    match v {
        Value::Null => Value::Null,
        other => Value::Str(f(&other.to_display_string())),
    }
}

fn num_to_int(v: &Value, f: impl FnOnce(f64) -> f64) -> Value {
    match v {
        Value::Null => Value::Null,
        other => Value::Int(f(other.to_real().unwrap_or(0.0)) as i64),
    }
}

fn fold_extreme(args: &[Value], greatest: bool) -> Result<Value, DbError> {
    if args.is_empty() {
        return Err(DbError::Runtime("GREATEST/LEAST need arguments".into()));
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let mut best = args[0].clone();
    for v in &args[1..] {
        let take = match v.sql_cmp(&best) {
            Some(std::cmp::Ordering::Greater) => greatest,
            Some(std::cmp::Ordering::Less) => !greatest,
            _ => false,
        };
        if take {
            best = v.clone();
        }
    }
    Ok(best)
}

/// Deterministic stand-in for MySQL digest functions: not cryptographic,
/// but stable, hex-shaped and collision-resistant enough for the workloads
/// (FNV-1a folded to 32 hex chars).
#[must_use]
pub fn pseudo_digest(alg: &str, input: &str) -> String {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    for b in alg.bytes().chain(input.bytes()) {
        h1 ^= u64::from(b);
        h1 = h1.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut h2: u64 = h1 ^ 0x9e37_79b9_7f4a_7c15;
    for b in input.bytes().rev() {
        h2 ^= u64::from(b);
        h2 = h2.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h1:016x}{h2:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Value {
        let mut fx = SideEffects::default();
        call_scalar(name, args, 1000, &mut fx).expect("call ok")
    }

    #[test]
    fn concat_and_null() {
        assert_eq!(
            call("CONCAT", &["a".into(), Value::Int(1)]),
            Value::from("a1")
        );
        assert_eq!(call("CONCAT", &["a".into(), Value::Null]), Value::Null);
        assert_eq!(
            call(
                "CONCAT_WS",
                &[",".into(), "a".into(), Value::Null, "b".into()]
            ),
            Value::from("a,b")
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("UPPER", &["ab".into()]), Value::from("AB"));
        assert_eq!(call("LENGTH", &["héllo".into()]), Value::Int(5));
        assert_eq!(
            call("SUBSTRING", &["hello".into(), Value::Int(2)]),
            Value::from("ello")
        );
        assert_eq!(
            call("SUBSTRING", &["hello".into(), Value::Int(2), Value::Int(2)]),
            Value::from("el")
        );
        assert_eq!(
            call("SUBSTRING", &["hello".into(), Value::Int(-3)]),
            Value::from("llo")
        );
        assert_eq!(
            call("LEFT", &["hello".into(), Value::Int(2)]),
            Value::from("he")
        );
        assert_eq!(
            call("RIGHT", &["hello".into(), Value::Int(2)]),
            Value::from("lo")
        );
        assert_eq!(
            call("REPLACE", &["a-b".into(), "-".into(), "+".into()]),
            Value::from("a+b")
        );
        assert_eq!(call("REVERSE", &["ab".into()]), Value::from("ba"));
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(call("ABS", &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(call("ROUND", &[Value::Real(2.6)]), Value::Int(3));
        assert_eq!(
            call("ROUND", &[Value::Real(2.625), Value::Int(2)]),
            Value::Real(2.63)
        );
        assert_eq!(call("FLOOR", &[Value::Real(2.9)]), Value::Int(2));
        assert_eq!(call("CEIL", &[Value::Real(2.1)]), Value::Int(3));
        assert_eq!(call("MOD", &[Value::Int(7), Value::Int(0)]), Value::Null);
    }

    #[test]
    fn null_handling_functions() {
        assert_eq!(
            call("COALESCE", &[Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
        assert_eq!(call("IFNULL", &[Value::Null, "x".into()]), Value::from("x"));
        assert_eq!(call("NULLIF", &[Value::Int(1), Value::Int(1)]), Value::Null);
        assert_eq!(
            call("IF", &[Value::Int(0), "t".into(), "f".into()]),
            Value::from("f")
        );
    }

    #[test]
    fn sleep_records_side_effect() {
        let mut fx = SideEffects::default();
        call_scalar("SLEEP", &[Value::Int(5)], 0, &mut fx).unwrap();
        assert_eq!(fx.sleep_seconds, 5.0);
        call_scalar(
            "BENCHMARK",
            &[Value::Int(1_000_000), Value::Int(1)],
            0,
            &mut fx,
        )
        .unwrap();
        assert!(fx.sleep_seconds > 5.9);
    }

    #[test]
    fn obfuscation_helpers() {
        assert_eq!(
            call("CHAR", &[Value::Int(65), Value::Int(66)]),
            Value::from("AB")
        );
        assert_eq!(call("HEX", &["AB".into()]), Value::from("4142"));
        assert_eq!(call("ASCII", &["A".into()]), Value::Int(65));
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        let a = pseudo_digest("MD5", "secret");
        let b = pseudo_digest("MD5", "secret");
        let c = pseudo_digest("MD5", "other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn position_functions() {
        assert_eq!(
            call("INSTR", &["foobar".into(), "bar".into()]),
            Value::Int(4)
        );
        assert_eq!(
            call("INSTR", &["foobar".into(), "zzz".into()]),
            Value::Int(0)
        );
        assert_eq!(
            call("LOCATE", &["bar".into(), "foobar".into()]),
            Value::Int(4)
        );
        assert_eq!(
            call("INSTR", &["FooBar".into(), "bar".into()]),
            Value::Int(4)
        );
        assert_eq!(call("INSTR", &["x".into(), "".into()]), Value::Int(1));
    }

    #[test]
    fn padding_and_repeat() {
        assert_eq!(
            call("LPAD", &["5".into(), Value::Int(3), "0".into()]),
            Value::from("005")
        );
        assert_eq!(
            call("RPAD", &["ab".into(), Value::Int(5), "xy".into()]),
            Value::from("abxyx")
        );
        assert_eq!(
            call("LPAD", &["hello".into(), Value::Int(3), "0".into()]),
            Value::from("hel")
        );
        assert_eq!(
            call("LPAD", &["a".into(), Value::Int(3), "".into()]),
            Value::Null
        );
        assert_eq!(
            call("REPEAT", &["ab".into(), Value::Int(3)]),
            Value::from("ababab")
        );
        assert_eq!(
            call("REPEAT", &["ab".into(), Value::Int(-1)]),
            Value::from("")
        );
        assert_eq!(call("SPACE", &[Value::Int(3)]), Value::from("   "));
    }

    #[test]
    fn math_extras() {
        assert_eq!(call("SIGN", &[Value::Int(-9)]), Value::Int(-1));
        assert_eq!(call("SIGN", &[Value::Int(0)]), Value::Int(0));
        assert_eq!(
            call("POW", &[Value::Int(2), Value::Int(10)]),
            Value::Real(1024.0)
        );
        assert_eq!(call("SQRT", &[Value::Int(9)]), Value::Real(3.0));
        assert_eq!(call("SQRT", &[Value::Int(-1)]), Value::Null);
        assert_eq!(
            call("TRUNCATE", &[Value::Real(2.987), Value::Int(2)]),
            Value::Real(2.98)
        );
        assert_eq!(call("BIN", &[Value::Int(5)]), Value::from("101"));
        assert_eq!(call("OCT", &[Value::Int(9)]), Value::from("11"));
    }

    #[test]
    fn elt_and_field() {
        assert_eq!(
            call("ELT", &[Value::Int(2), "a".into(), "b".into(), "c".into()]),
            Value::from("b")
        );
        assert_eq!(call("ELT", &[Value::Int(9), "a".into()]), Value::Null);
        assert_eq!(
            call("FIELD", &["b".into(), "a".into(), "b".into(), "c".into()]),
            Value::Int(2)
        );
        assert_eq!(call("FIELD", &["z".into(), "a".into()]), Value::Int(0));
        assert_eq!(call("STRCMP", &["a".into(), "b".into()]), Value::Int(-1));
        assert_eq!(call("STRCMP", &["b".into(), "a".into()]), Value::Int(1));
        assert_eq!(call("STRCMP", &["A".into(), "a".into()]), Value::Int(0));
    }

    #[test]
    fn unknown_function_errors() {
        let mut fx = SideEffects::default();
        assert!(call_scalar("LOAD_FILE", &[], 0, &mut fx).is_err());
    }

    #[test]
    fn aggregates_identified() {
        assert!(is_aggregate("COUNT"));
        assert!(is_aggregate("SUM"));
        assert!(!is_aggregate("CONCAT"));
    }
}
