//! In-memory row storage with primary-key indexes.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::catalog::TableSchema;
use crate::error::DbError;
use crate::value::Value;

/// A stored row.
pub type Row = Vec<Value>;

/// Storage for one table: rows in insertion order plus an optional
/// primary-key index (integer PKs, which is what `AUTO_INCREMENT` produces).
#[derive(Debug, Clone)]
pub struct TableStore {
    pub schema: TableSchema,
    rows: Vec<Option<Row>>,
    /// live row count (rows minus tombstones)
    live: usize,
    /// PK value → slot, for integer primary keys.
    pk_index: BTreeMap<i64, usize>,
    next_auto_increment: i64,
}

impl TableStore {
    /// Creates an empty store for the schema.
    #[must_use]
    pub fn new(schema: TableSchema) -> Self {
        TableStore {
            schema,
            rows: Vec::new(),
            live: 0,
            pk_index: BTreeMap::new(),
            next_auto_increment: 1,
        }
    }

    /// Number of live rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table has no live rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a fully-resolved row (one value per column, already coerced).
    /// Fills `AUTO_INCREMENT` when the PK cell is NULL.
    ///
    /// # Errors
    ///
    /// [`DbError::NotNull`] and [`DbError::DuplicateKey`] on constraint
    /// violations.
    pub fn insert(&mut self, mut row: Row) -> Result<usize, DbError> {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        if let Some(pk) = self.schema.primary_key_index() {
            if row[pk].is_null() && self.schema.columns[pk].auto_increment {
                row[pk] = Value::Int(self.next_auto_increment);
            }
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(DbError::NotNull(col.name.clone()));
            }
        }
        if let Some(pk) = self.schema.primary_key_index() {
            if let Some(key) = row[pk].to_int() {
                if self.pk_index.contains_key(&key) {
                    return Err(DbError::DuplicateKey(key.to_string()));
                }
                self.pk_index.insert(key, self.rows.len());
                if key >= self.next_auto_increment {
                    self.next_auto_increment = key + 1;
                }
            }
        }
        let slot = self.rows.len();
        self.rows.push(Some(row));
        self.live += 1;
        Ok(slot)
    }

    /// Appends a row without constraint checks. Only for synthesized
    /// catalog views, whose rows are well-formed by construction and whose
    /// schemas declare no primary key.
    fn push_unchecked(&mut self, row: Row) {
        self.rows.push(Some(row));
        self.live += 1;
    }

    /// Iterates over live rows with their slot numbers.
    pub fn scan(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// Point lookup through the PK index.
    #[must_use]
    pub fn get_by_pk(&self, key: i64) -> Option<&Row> {
        self.pk_index
            .get(&key)
            .and_then(|&slot| self.rows[slot].as_ref())
    }

    /// Replaces the row in `slot`.
    ///
    /// # Errors
    ///
    /// Constraint errors as in [`TableStore::insert`]; `Runtime` if the slot
    /// is dead.
    pub fn update_slot(&mut self, slot: usize, row: Row) -> Result<(), DbError> {
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(DbError::NotNull(col.name.clone()));
            }
        }
        let old = self
            .rows
            .get_mut(slot)
            .and_then(Option::as_mut)
            .ok_or_else(|| DbError::Runtime(format!("update of dead slot {slot}")))?;
        if let Some(pk) = self.schema.primary_key_index() {
            let old_key = old[pk].to_int();
            let new_key = row[pk].to_int();
            if old_key != new_key {
                if let Some(nk) = new_key {
                    if self.pk_index.contains_key(&nk) {
                        return Err(DbError::DuplicateKey(nk.to_string()));
                    }
                    self.pk_index.insert(nk, slot);
                }
                if let Some(ok) = old_key {
                    self.pk_index.remove(&ok);
                }
            }
        }
        match self.rows.get_mut(slot).and_then(Option::as_mut) {
            Some(cell) => *cell = row,
            None => return Err(DbError::Runtime(format!("update of dead slot {slot}"))),
        }
        Ok(())
    }

    /// Deletes the row in `slot` (no-op when already dead).
    pub fn delete_slot(&mut self, slot: usize) {
        if let Some(row) = self.rows.get_mut(slot).and_then(Option::take) {
            if let Some(pk) = self.schema.primary_key_index() {
                if let Some(key) = row[pk].to_int() {
                    self.pk_index.remove(&key);
                }
            }
            self.live -= 1;
        }
    }
}

/// The database: a set of named tables, plus synthesized
/// `information_schema` views (the catalog surface UNION-based attackers
/// enumerate schemas through).
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, TableStore>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] unless `if_not_exists`.
    pub fn create_table(
        &mut self,
        schema: TableSchema,
        if_not_exists: bool,
    ) -> Result<bool, DbError> {
        let key = schema.name.clone();
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(DbError::TableExists(key));
        }
        self.tables.insert(key, TableStore::new(schema));
        Ok(true)
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] unless `if_exists`.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<bool, DbError> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() {
            if if_exists {
                return Ok(false);
            }
            return Err(DbError::UnknownTable(name.to_string()));
        }
        Ok(true)
    }

    /// Immutable table lookup.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<&TableStore, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when absent.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableStore, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True when the table exists.
    #[must_use]
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Synthesizes the MySQL `information_schema` views this engine
    /// exposes: `information_schema.tables` and
    /// `information_schema.columns`. Returns `None` for other names.
    #[must_use]
    pub fn virtual_table(&self, name: &str) -> Option<TableStore> {
        use septic_sql::ast::{ColumnDef, ColumnType};
        let varchar = |name: &str| ColumnDef {
            name: name.to_string(),
            column_type: ColumnType::Varchar(128),
            not_null: true,
            primary_key: false,
            auto_increment: false,
            default: None,
        };
        let int = |name: &str| ColumnDef {
            name: name.to_string(),
            column_type: ColumnType::BigInt,
            not_null: true,
            primary_key: false,
            auto_increment: false,
            default: None,
        };
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        match name.to_ascii_lowercase().as_str() {
            "information_schema.tables" => {
                let schema = TableSchema::new(
                    "information_schema.tables",
                    &[
                        varchar("table_schema"),
                        varchar("table_name"),
                        int("table_rows"),
                    ],
                );
                let mut store = TableStore::new(schema);
                for table_name in names {
                    let rows = self.tables[table_name].len() as i64;
                    store.push_unchecked(vec![
                        Value::from("app"),
                        Value::from(table_name.clone()),
                        Value::Int(rows),
                    ]);
                }
                Some(store)
            }
            "information_schema.columns" => {
                let schema = TableSchema::new(
                    "information_schema.columns",
                    &[
                        varchar("table_schema"),
                        varchar("table_name"),
                        varchar("column_name"),
                        varchar("data_type"),
                        int("ordinal_position"),
                    ],
                );
                let mut store = TableStore::new(schema);
                for table_name in names {
                    for (i, column) in self.tables[table_name].schema.columns.iter().enumerate() {
                        store.push_unchecked(vec![
                            Value::from("app"),
                            Value::from(table_name.clone()),
                            Value::from(column.name.clone()),
                            Value::from(column.column_type.to_string()),
                            Value::Int(i as i64 + 1),
                        ]);
                    }
                }
                Some(store)
            }
            _ => None,
        }
    }

    /// Resolves a physical table or a synthesized `information_schema`
    /// view.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when neither exists.
    pub fn table_or_virtual(
        &self,
        name: &str,
    ) -> Result<std::borrow::Cow<'_, TableStore>, DbError> {
        if let Ok(store) = self.table(name) {
            return Ok(std::borrow::Cow::Borrowed(store));
        }
        self.virtual_table(name)
            .map(std::borrow::Cow::Owned)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True when the name resolves to a physical table or a virtual view.
    #[must_use]
    pub fn has_table_or_virtual(&self, name: &str) -> bool {
        self.has_table(name)
            || matches!(
                name.to_ascii_lowercase().as_str(),
                "information_schema.tables" | "information_schema.columns"
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::ast::{ColumnDef, ColumnType};

    fn users_schema() -> TableSchema {
        TableSchema::new(
            "users",
            &[
                ColumnDef {
                    name: "id".into(),
                    column_type: ColumnType::Int,
                    not_null: false,
                    primary_key: true,
                    auto_increment: true,
                    default: None,
                },
                ColumnDef {
                    name: "name".into(),
                    column_type: ColumnType::Varchar(32),
                    not_null: true,
                    primary_key: false,
                    auto_increment: false,
                    default: None,
                },
            ],
        )
    }

    #[test]
    fn auto_increment_fills_null_pk() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.insert(vec![Value::Null, Value::from("b")]).unwrap();
        assert_eq!(t.get_by_pk(1).unwrap()[1], Value::from("a"));
        assert_eq!(t.get_by_pk(2).unwrap()[1], Value::from("b"));
    }

    #[test]
    fn explicit_pk_advances_auto_increment() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Int(10), Value::from("x")]).unwrap();
        t.insert(vec![Value::Null, Value::from("y")]).unwrap();
        assert!(t.get_by_pk(11).is_some());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Int(1), Value::from("x")]).unwrap();
        let err = t.insert(vec![Value::Int(1), Value::from("y")]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey(_)));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = TableStore::new(users_schema());
        let err = t.insert(vec![Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, DbError::NotNull(_)));
    }

    #[test]
    fn delete_and_update() {
        let mut t = TableStore::new(users_schema());
        let slot = t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.update_slot(slot, vec![Value::Int(1), Value::from("z")])
            .unwrap();
        assert_eq!(t.get_by_pk(1).unwrap()[1], Value::from("z"));
        t.delete_slot(slot);
        assert!(t.is_empty());
        assert!(t.get_by_pk(1).is_none());
        // Deleting again is a no-op.
        t.delete_slot(slot);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn pk_reindex_on_update() {
        let mut t = TableStore::new(users_schema());
        let slot = t.insert(vec![Value::Int(5), Value::from("a")]).unwrap();
        t.update_slot(slot, vec![Value::Int(9), Value::from("a")])
            .unwrap();
        assert!(t.get_by_pk(5).is_none());
        assert!(t.get_by_pk(9).is_some());
    }

    #[test]
    fn information_schema_views() {
        let mut db = Database::new();
        db.create_table(users_schema(), false).unwrap();
        let tables = db.virtual_table("information_schema.tables").unwrap();
        assert_eq!(tables.len(), 1);
        let (_, row) = tables.scan().next().unwrap();
        assert_eq!(row[1], Value::from("users"));
        let columns = db.virtual_table("INFORMATION_SCHEMA.COLUMNS").unwrap();
        assert_eq!(columns.len(), 2);
        assert!(db.virtual_table("information_schema.nope").is_none());
        assert!(db.has_table_or_virtual("information_schema.tables"));
        assert!(db.table_or_virtual("users").is_ok());
        assert!(db.table_or_virtual("ghost").is_err());
    }

    #[test]
    fn database_create_drop() {
        let mut db = Database::new();
        assert!(db.create_table(users_schema(), false).unwrap());
        assert!(!db.create_table(users_schema(), true).unwrap());
        assert!(matches!(
            db.create_table(users_schema(), false),
            Err(DbError::TableExists(_))
        ));
        assert!(db.has_table("USERS"));
        assert!(db.drop_table("users", false).unwrap());
        assert!(!db.drop_table("users", true).unwrap());
        assert!(matches!(
            db.drop_table("users", false),
            Err(DbError::UnknownTable(_))
        ));
    }
}
