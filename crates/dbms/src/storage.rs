//! Row storage with primary-key indexes and copy-on-write table epochs.
//!
//! `TableStore` keeps rows in slot order with a tombstone free-list so
//! DELETE/INSERT churn reuses space instead of growing forever.  The
//! primary-key index is typed ([`PkKey`]): the key is derived by coercing
//! the PK cell through the column type, so string keys collate the way the
//! executor compares them and never collide through MySQL's
//! numeric-prefix coercion.
//!
//! `Database` holds its tables behind `Arc` so a snapshot is a cheap
//! epoch clone: readers keep the epoch they started with while writers
//! copy-on-write only the tables they touch (the MVCC substrate for
//! `BEGIN`/`COMMIT` and for WAL checkpointing in [`crate::wal`]).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use crate::catalog::TableSchema;
use crate::error::DbError;
use crate::value::Value;

/// A stored row.
pub type Row = Vec<Value>;

/// A typed primary-key index key.
///
/// Derived from the PK cell *after* coercion through the column type:
/// integer columns index as `Int`, string columns as `Str` folded to
/// lowercase (MySQL's default collation is case-insensitive, matching
/// [`Value::sql_cmp`]).  `DOUBLE` keys are rejected as un-indexable
/// rather than silently truncated.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PkKey {
    Int(i64),
    Str(String),
}

/// Storage for one table: rows in slot order, a free-list of reclaimed
/// tombstone slots, and a typed primary-key index.
#[derive(Debug, Clone)]
pub struct TableStore {
    pub schema: TableSchema,
    rows: Vec<Option<Row>>,
    /// live row count (rows minus tombstones)
    live: usize,
    /// Slots of deleted rows, reused by the next inserts.
    free: Vec<usize>,
    /// PK value → slot.
    pk_index: BTreeMap<PkKey, usize>,
    next_auto_increment: i64,
}

impl TableStore {
    /// Creates an empty store for the schema.
    #[must_use]
    pub fn new(schema: TableSchema) -> Self {
        TableStore {
            schema,
            rows: Vec::new(),
            live: 0,
            free: Vec::new(),
            pk_index: BTreeMap::new(),
            next_auto_increment: 1,
        }
    }

    /// Number of live rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table has no live rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of physical slots, live or dead (bounded by the free-list:
    /// stays near the live count under DELETE/INSERT churn).
    #[must_use]
    pub fn physical_slots(&self) -> usize {
        self.rows.len()
    }

    /// Derives the typed index key for a PK cell, along with the coerced
    /// cell value that must be stored so the row and the index agree.
    ///
    /// # Errors
    ///
    /// [`DbError::Semantic`] for un-indexable key types (`DOUBLE`),
    /// [`DbError::NotNull`] for NULL keys.
    fn index_key(&self, pk: usize, value: &Value) -> Result<(PkKey, Value), DbError> {
        let col = &self.schema.columns[pk];
        match col.coerce(value.clone()) {
            Value::Int(v) => Ok((PkKey::Int(v), Value::Int(v))),
            Value::Str(s) => Ok((PkKey::Str(s.to_lowercase()), Value::Str(s))),
            Value::Null => Err(DbError::NotNull(col.name.clone())),
            Value::Real(_) => Err(DbError::Semantic(format!(
                "primary key column '{}' has an un-indexable type (DOUBLE)",
                col.name
            ))),
        }
    }

    /// Inserts a fully-resolved row (one value per column, already coerced).
    /// Fills `AUTO_INCREMENT` when the PK cell is NULL.  Reuses a tombstone
    /// slot when one is free.
    ///
    /// # Errors
    ///
    /// [`DbError::NotNull`] and [`DbError::DuplicateKey`] on constraint
    /// violations; [`DbError::Semantic`] for un-indexable PK values.
    pub fn insert(&mut self, mut row: Row) -> Result<usize, DbError> {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        if let Some(pk) = self.schema.primary_key_index() {
            if row[pk].is_null() && self.schema.columns[pk].auto_increment {
                row[pk] = Value::Int(self.next_auto_increment);
            }
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(DbError::NotNull(col.name.clone()));
            }
        }
        let slot = self.free.last().copied().unwrap_or(self.rows.len());
        if let Some(pk) = self.schema.primary_key_index() {
            let (key, cell) = self.index_key(pk, &row[pk])?;
            if self.pk_index.contains_key(&key) {
                return Err(DbError::DuplicateKey(cell.to_display_string()));
            }
            if let PkKey::Int(v) = key {
                if v >= self.next_auto_increment {
                    self.next_auto_increment = v + 1;
                }
            }
            row[pk] = cell;
            self.pk_index.insert(key, slot);
        }
        if let Some(reused) = self.free.pop() {
            self.rows[reused] = Some(row);
        } else {
            self.rows.push(Some(row));
        }
        self.live += 1;
        Ok(slot)
    }

    /// Appends a row without constraint checks. Only for synthesized
    /// catalog views, whose rows are well-formed by construction and whose
    /// schemas declare no primary key.
    fn push_unchecked(&mut self, row: Row) {
        self.rows.push(Some(row));
        self.live += 1;
    }

    /// Iterates over live rows with their slot numbers.
    pub fn scan(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// Point lookup through the PK index by integer key.
    #[must_use]
    pub fn get_by_pk(&self, key: i64) -> Option<&Row> {
        self.pk_index
            .get(&PkKey::Int(key))
            .and_then(|&slot| self.rows[slot].as_ref())
    }

    /// Point lookup through the PK index by any key value, coerced through
    /// the PK column type (string keys match case-insensitively).
    #[must_use]
    pub fn get_by_pk_value(&self, value: &Value) -> Option<&Row> {
        let pk = self.schema.primary_key_index()?;
        let (key, _) = self.index_key(pk, value).ok()?;
        self.pk_index
            .get(&key)
            .and_then(|&slot| self.rows[slot].as_ref())
    }

    /// Replaces the row in `slot`.
    ///
    /// # Errors
    ///
    /// Constraint errors as in [`TableStore::insert`]; `Runtime` if the slot
    /// is dead.
    pub fn update_slot(&mut self, slot: usize, mut row: Row) -> Result<(), DbError> {
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.not_null && row[i].is_null() {
                return Err(DbError::NotNull(col.name.clone()));
            }
        }
        let old_pk_value = match self.rows.get(slot).and_then(Option::as_ref) {
            Some(old) => self.schema.primary_key_index().map(|pk| old[pk].clone()),
            None => return Err(DbError::Runtime(format!("update of dead slot {slot}"))),
        };
        if let (Some(pk), Some(old_value)) = (self.schema.primary_key_index(), old_pk_value) {
            let (old_key, _) = self.index_key(pk, &old_value)?;
            let (new_key, cell) = self.index_key(pk, &row[pk])?;
            if old_key != new_key {
                if self.pk_index.contains_key(&new_key) {
                    return Err(DbError::DuplicateKey(cell.to_display_string()));
                }
                self.pk_index.remove(&old_key);
                self.pk_index.insert(new_key.clone(), slot);
            }
            // A rekey must also advance the auto-increment cursor, or the
            // next auto-filled insert collides with the moved row.
            if let PkKey::Int(v) = new_key {
                if v >= self.next_auto_increment {
                    self.next_auto_increment = v + 1;
                }
            }
            row[pk] = cell;
        }
        match self.rows.get_mut(slot).and_then(Option::as_mut) {
            Some(cell) => *cell = row,
            None => return Err(DbError::Runtime(format!("update of dead slot {slot}"))),
        }
        Ok(())
    }

    /// Deletes the row in `slot` (no-op when already dead) and reclaims the
    /// slot for future inserts.
    pub fn delete_slot(&mut self, slot: usize) {
        if let Some(row) = self.rows.get_mut(slot).and_then(Option::take) {
            if let Some(pk) = self.schema.primary_key_index() {
                if let Ok((key, _)) = self.index_key(pk, &row[pk]) {
                    self.pk_index.remove(&key);
                }
            }
            self.live -= 1;
            self.free.push(slot);
        }
    }

    /// Live rows in slot order, cloned (checkpoint serialization).
    #[must_use]
    pub fn rows_snapshot(&self) -> Vec<Row> {
        self.scan().map(|(_, row)| row.clone()).collect()
    }

    /// Auto-increment cursor (persisted by checkpoints: it can run ahead
    /// of the maximum live key after deletes).
    #[must_use]
    pub fn next_auto_increment(&self) -> i64 {
        self.next_auto_increment
    }

    /// Rebuilds a store from checkpointed rows, restoring the
    /// auto-increment cursor (which may exceed what the rows imply).
    ///
    /// # Errors
    ///
    /// Constraint errors if the snapshot rows are inconsistent.
    pub fn restore(
        schema: TableSchema,
        rows: Vec<Row>,
        next_auto_increment: i64,
    ) -> Result<Self, DbError> {
        let mut store = TableStore::new(schema);
        for row in rows {
            store.insert(row)?;
        }
        store.next_auto_increment = store.next_auto_increment.max(next_auto_increment);
        Ok(store)
    }
}

/// The database: a set of named tables, plus synthesized
/// `information_schema` views (the catalog surface UNION-based attackers
/// enumerate schemas through).
///
/// Tables live behind `Arc`, so cloning a `Database` clones the *map*,
/// not the rows: [`Database::snapshot`] is O(tables) and two snapshots
/// share table storage until a writer copies-on-write its table.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Arc<TableStore>>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        Database::default()
    }

    /// A copy-on-write snapshot: cheap epoch clone sharing all table
    /// storage with `self`.  Mutating either side copies only the touched
    /// tables (MVCC snapshot isolation for readers and transactions).
    #[must_use]
    pub fn snapshot(&self) -> Database {
        self.clone()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] unless `if_not_exists`.
    pub fn create_table(
        &mut self,
        schema: TableSchema,
        if_not_exists: bool,
    ) -> Result<bool, DbError> {
        let key = schema.name.clone();
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(DbError::TableExists(key));
        }
        self.tables.insert(key, Arc::new(TableStore::new(schema)));
        Ok(true)
    }

    /// Installs an already-built store (WAL/checkpoint recovery).
    pub fn install_table(&mut self, store: TableStore) {
        self.tables
            .insert(store.schema.name.clone(), Arc::new(store));
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] unless `if_exists`.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<bool, DbError> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() {
            if if_exists {
                return Ok(false);
            }
            return Err(DbError::UnknownTable(name.to_string()));
        }
        Ok(true)
    }

    /// Immutable table lookup.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when absent.
    pub fn table(&self, name: &str) -> Result<&TableStore, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(Arc::as_ref)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup; copies-on-write when the table's storage is
    /// shared with a snapshot.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when absent.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableStore, DbError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .map(Arc::make_mut)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True when the table exists.
    #[must_use]
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// All table stores in name order (deterministic iteration for
    /// checkpoints and recovered-row scans).
    #[must_use]
    pub fn tables_sorted(&self) -> Vec<&TableStore> {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        names.into_iter().map(|n| self.tables[n].as_ref()).collect()
    }

    /// Synthesizes the MySQL `information_schema` views this engine
    /// exposes: `information_schema.tables` and
    /// `information_schema.columns`. Returns `None` for other names.
    #[must_use]
    pub fn virtual_table(&self, name: &str) -> Option<TableStore> {
        use septic_sql::ast::{ColumnDef, ColumnType};
        let varchar = |name: &str| ColumnDef {
            name: name.to_string(),
            column_type: ColumnType::Varchar(128),
            not_null: true,
            primary_key: false,
            auto_increment: false,
            default: None,
        };
        let int = |name: &str| ColumnDef {
            name: name.to_string(),
            column_type: ColumnType::BigInt,
            not_null: true,
            primary_key: false,
            auto_increment: false,
            default: None,
        };
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        match name.to_ascii_lowercase().as_str() {
            "information_schema.tables" => {
                let schema = TableSchema::new(
                    "information_schema.tables",
                    &[
                        varchar("table_schema"),
                        varchar("table_name"),
                        int("table_rows"),
                    ],
                );
                let mut store = TableStore::new(schema);
                for table_name in names {
                    let rows = self.tables[table_name].len() as i64;
                    store.push_unchecked(vec![
                        Value::from("app"),
                        Value::from(table_name.clone()),
                        Value::Int(rows),
                    ]);
                }
                Some(store)
            }
            "information_schema.columns" => {
                let schema = TableSchema::new(
                    "information_schema.columns",
                    &[
                        varchar("table_schema"),
                        varchar("table_name"),
                        varchar("column_name"),
                        varchar("data_type"),
                        int("ordinal_position"),
                    ],
                );
                let mut store = TableStore::new(schema);
                for table_name in names {
                    for (i, column) in self.tables[table_name].schema.columns.iter().enumerate() {
                        store.push_unchecked(vec![
                            Value::from("app"),
                            Value::from(table_name.clone()),
                            Value::from(column.name.clone()),
                            Value::from(column.column_type.to_string()),
                            Value::Int(i as i64 + 1),
                        ]);
                    }
                }
                Some(store)
            }
            _ => None,
        }
    }

    /// Resolves a physical table or a synthesized `information_schema`
    /// view.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when neither exists.
    pub fn table_or_virtual(
        &self,
        name: &str,
    ) -> Result<std::borrow::Cow<'_, TableStore>, DbError> {
        if let Ok(store) = self.table(name) {
            return Ok(std::borrow::Cow::Borrowed(store));
        }
        self.virtual_table(name)
            .map(std::borrow::Cow::Owned)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True when the name resolves to a physical table or a virtual view.
    #[must_use]
    pub fn has_table_or_virtual(&self, name: &str) -> bool {
        self.has_table(name)
            || matches!(
                name.to_ascii_lowercase().as_str(),
                "information_schema.tables" | "information_schema.columns"
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::ast::{ColumnDef, ColumnType};

    fn users_schema() -> TableSchema {
        TableSchema::new(
            "users",
            &[
                ColumnDef {
                    name: "id".into(),
                    column_type: ColumnType::Int,
                    not_null: false,
                    primary_key: true,
                    auto_increment: true,
                    default: None,
                },
                ColumnDef {
                    name: "name".into(),
                    column_type: ColumnType::Varchar(32),
                    not_null: true,
                    primary_key: false,
                    auto_increment: false,
                    default: None,
                },
            ],
        )
    }

    fn tokens_schema() -> TableSchema {
        TableSchema::new(
            "tokens",
            &[
                ColumnDef {
                    name: "token".into(),
                    column_type: ColumnType::Varchar(64),
                    not_null: true,
                    primary_key: true,
                    auto_increment: false,
                    default: None,
                },
                ColumnDef {
                    name: "owner".into(),
                    column_type: ColumnType::Varchar(32),
                    not_null: false,
                    primary_key: false,
                    auto_increment: false,
                    default: None,
                },
            ],
        )
    }

    #[test]
    fn auto_increment_fills_null_pk() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.insert(vec![Value::Null, Value::from("b")]).unwrap();
        assert_eq!(t.get_by_pk(1).unwrap()[1], Value::from("a"));
        assert_eq!(t.get_by_pk(2).unwrap()[1], Value::from("b"));
    }

    #[test]
    fn explicit_pk_advances_auto_increment() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Int(10), Value::from("x")]).unwrap();
        t.insert(vec![Value::Null, Value::from("y")]).unwrap();
        assert!(t.get_by_pk(11).is_some());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Int(1), Value::from("x")]).unwrap();
        let err = t.insert(vec![Value::Int(1), Value::from("y")]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey(_)));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = TableStore::new(users_schema());
        let err = t.insert(vec![Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, DbError::NotNull(_)));
    }

    #[test]
    fn delete_and_update() {
        let mut t = TableStore::new(users_schema());
        let slot = t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.update_slot(slot, vec![Value::Int(1), Value::from("z")])
            .unwrap();
        assert_eq!(t.get_by_pk(1).unwrap()[1], Value::from("z"));
        t.delete_slot(slot);
        assert!(t.is_empty());
        assert!(t.get_by_pk(1).is_none());
        // Deleting again is a no-op.
        t.delete_slot(slot);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn pk_reindex_on_update() {
        let mut t = TableStore::new(users_schema());
        let slot = t.insert(vec![Value::Int(5), Value::from("a")]).unwrap();
        t.update_slot(slot, vec![Value::Int(9), Value::from("a")])
            .unwrap();
        assert!(t.get_by_pk(5).is_none());
        assert!(t.get_by_pk(9).is_some());
    }

    // Regression (bug 1): tombstone slots used to accumulate forever —
    // 10k insert/delete cycles left 10k dead `None` slots behind and made
    // every scan O(all-rows-ever).
    #[test]
    fn deleted_slots_are_reclaimed() {
        let mut t = TableStore::new(users_schema());
        let keep = t.insert(vec![Value::Null, Value::from("keep")]).unwrap();
        for _ in 0..10_000 {
            let slot = t.insert(vec![Value::Null, Value::from("churn")]).unwrap();
            t.delete_slot(slot);
        }
        assert_eq!(t.len(), 1);
        assert!(
            t.physical_slots() <= 2,
            "tombstones never reclaimed: {} physical slots for 1 live row",
            t.physical_slots()
        );
        assert!(t.rows[keep].is_some());
        assert_eq!(t.scan().count(), 1);
        // The next insert reuses a reclaimed slot instead of growing.
        let slot = t.insert(vec![Value::Null, Value::from("after")]).unwrap();
        assert!(
            slot <= 2,
            "tombstones never reclaimed: new row landed at slot {slot}"
        );
    }

    // Regression (bug 2): `update_slot` used to leave `next_auto_increment`
    // behind after a rekey, so auto-filled inserts eventually collided with
    // the moved row.
    #[test]
    fn update_advances_auto_increment() {
        let mut t = TableStore::new(users_schema());
        let slot = t.insert(vec![Value::Null, Value::from("a")]).unwrap(); // id=1
        t.update_slot(slot, vec![Value::Int(10), Value::from("a")])
            .unwrap();
        for i in 0..9 {
            t.insert(vec![Value::Null, Value::from("b")])
                .unwrap_or_else(|e| panic!("auto-inc insert {i} collided with moved row: {e}"));
        }
        assert!(t.get_by_pk(10).is_some(), "moved row lost");
        assert_eq!(t.len(), 10);
    }

    // Regression (bug 3a): string PKs used to be indexed through
    // `Value::to_int()`, so distinct strings collided at their numeric
    // prefix (usually 0) with a spurious DuplicateKey.
    #[test]
    fn distinct_string_pks_do_not_collide() {
        let mut t = TableStore::new(tokens_schema());
        t.insert(vec![Value::from("alice"), Value::from("a")])
            .unwrap();
        t.insert(vec![Value::from("bob"), Value::from("b")])
            .unwrap_or_else(|e| panic!("distinct string PKs collided: {e}"));
        assert_eq!(t.len(), 2);
        let row = t.get_by_pk_value(&Value::from("bob")).unwrap();
        assert_eq!(row[1], Value::from("b"));
        // Case-insensitive, like the executor's string comparisons.
        assert!(t.get_by_pk_value(&Value::from("BOB")).is_some());
    }

    // Regression (bug 3b): the collided index entry made `get_by_pk(0)`
    // return a row whose primary key is not 0 at all.
    #[test]
    fn string_pk_not_reachable_via_bogus_integer_key() {
        let mut t = TableStore::new(tokens_schema());
        t.insert(vec![Value::from("alice"), Value::from("a")])
            .unwrap();
        assert!(
            t.get_by_pk(0).is_none(),
            "string PK leaked into the integer keyspace"
        );
        assert!(t.get_by_pk_value(&Value::Int(0)).is_none());
    }

    #[test]
    fn duplicate_string_pk_rejected_case_insensitively() {
        let mut t = TableStore::new(tokens_schema());
        t.insert(vec![Value::from("alice"), Value::from("a")])
            .unwrap();
        let err = t
            .insert(vec![Value::from("ALICE"), Value::from("b")])
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey(_)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unindexable_pk_rejected() {
        let schema = TableSchema::new(
            "readings",
            &[ColumnDef {
                name: "t".into(),
                column_type: ColumnType::Double,
                not_null: true,
                primary_key: true,
                auto_increment: false,
                default: None,
            }],
        );
        let mut t = TableStore::new(schema);
        let err = t.insert(vec![Value::Real(1.5)]).unwrap_err();
        assert!(matches!(err, DbError::Semantic(_)));
        assert!(t.is_empty());
    }

    #[test]
    fn integer_pk_cell_is_coerced_before_indexing() {
        let mut t = TableStore::new(users_schema());
        // A direct insert of a stringly-typed key coerces through INT.
        t.insert(vec![Value::from("7"), Value::from("x")]).unwrap();
        assert_eq!(t.get_by_pk(7).unwrap()[0], Value::Int(7));
        assert!(t.get_by_pk_value(&Value::from("7")).is_some());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut t = TableStore::new(users_schema());
        t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        let slot = t.insert(vec![Value::Null, Value::from("b")]).unwrap();
        t.delete_slot(slot);
        let restored =
            TableStore::restore(t.schema.clone(), t.rows_snapshot(), t.next_auto_increment())
                .unwrap();
        assert_eq!(restored.len(), 1);
        // The cursor survives even though row 2 is gone.
        assert_eq!(restored.next_auto_increment(), 3);
        assert_eq!(restored.get_by_pk(1).unwrap()[1], Value::from("a"));
    }

    #[test]
    fn information_schema_views() {
        let mut db = Database::new();
        db.create_table(users_schema(), false).unwrap();
        let tables = db.virtual_table("information_schema.tables").unwrap();
        assert_eq!(tables.len(), 1);
        let (_, row) = tables.scan().next().unwrap();
        assert_eq!(row[1], Value::from("users"));
        let columns = db.virtual_table("INFORMATION_SCHEMA.COLUMNS").unwrap();
        assert_eq!(columns.len(), 2);
        assert!(db.virtual_table("information_schema.nope").is_none());
        assert!(db.has_table_or_virtual("information_schema.tables"));
        assert!(db.table_or_virtual("users").is_ok());
        assert!(db.table_or_virtual("ghost").is_err());
    }

    #[test]
    fn database_create_drop() {
        let mut db = Database::new();
        assert!(db.create_table(users_schema(), false).unwrap());
        assert!(!db.create_table(users_schema(), true).unwrap());
        assert!(matches!(
            db.create_table(users_schema(), false),
            Err(DbError::TableExists(_))
        ));
        assert!(db.has_table("USERS"));
        assert!(db.drop_table("users", false).unwrap());
        assert!(!db.drop_table("users", true).unwrap());
        assert!(matches!(
            db.drop_table("users", false),
            Err(DbError::UnknownTable(_))
        ));
    }

    // COW semantics: a snapshot is isolated from later writes and shares
    // storage until a writer copies the touched table.
    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut db = Database::new();
        db.create_table(users_schema(), false).unwrap();
        db.table_mut("users")
            .unwrap()
            .insert(vec![Value::Null, Value::from("a")])
            .unwrap();
        let snap = db.snapshot();
        db.table_mut("users")
            .unwrap()
            .insert(vec![Value::Null, Value::from("b")])
            .unwrap();
        db.create_table(tokens_schema(), false).unwrap();
        assert_eq!(snap.table("users").unwrap().len(), 1);
        assert_eq!(db.table("users").unwrap().len(), 2);
        assert!(!snap.has_table("tokens"));
    }
}
