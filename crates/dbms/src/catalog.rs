//! Schema catalog: table and column metadata, name resolution.

use septic_sql::ast::{ColumnDef, ColumnType, Literal};
use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::value::Value;

/// Column metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub column_type: ColumnType,
    pub not_null: bool,
    pub primary_key: bool,
    pub auto_increment: bool,
    pub default: Option<Value>,
}

impl Column {
    /// Builds column metadata from an AST definition.
    #[must_use]
    pub fn from_def(def: &ColumnDef) -> Self {
        Column {
            name: def.name.to_ascii_lowercase(),
            column_type: def.column_type,
            not_null: def.not_null || def.primary_key,
            primary_key: def.primary_key,
            auto_increment: def.auto_increment,
            default: def.default.as_ref().map(|l| match l {
                Literal::Int(v) => Value::Int(*v),
                Literal::Float(v) => Value::Real(*v),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Null => Value::Null,
            }),
        }
    }

    /// Coerces an incoming value to this column's storage type, MySQL-style
    /// (lossy, never failing for the supported types; VARCHAR truncates).
    #[must_use]
    pub fn coerce(&self, value: Value) -> Value {
        if value.is_null() {
            return Value::Null;
        }
        match self.column_type {
            ColumnType::Int | ColumnType::BigInt => Value::Int(value.to_int().unwrap_or(0)),
            ColumnType::Double => Value::Real(value.to_real().unwrap_or(0.0)),
            ColumnType::Varchar(n) => {
                let mut s = value.to_display_string();
                let max = n as usize;
                if s.chars().count() > max {
                    s = s.chars().take(max).collect();
                }
                Value::Str(s)
            }
            ColumnType::Text | ColumnType::DateTime => Value::Str(value.to_display_string()),
        }
    }
}

/// Table metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Creates a schema from a `CREATE TABLE` definition.
    #[must_use]
    pub fn new(name: &str, defs: &[ColumnDef]) -> Self {
        TableSchema {
            name: name.to_ascii_lowercase(),
            columns: defs.iter().map(Column::from_def).collect(),
        }
    }

    /// Index of a column by (case-insensitive) name.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`] when the column does not exist.
    pub fn column_index(&self, name: &str) -> Result<usize, DbError> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Index of the primary-key column, if any.
    #[must_use]
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        let defs = vec![
            ColumnDef {
                name: "Id".into(),
                column_type: ColumnType::Int,
                not_null: false,
                primary_key: true,
                auto_increment: true,
                default: None,
            },
            ColumnDef {
                name: "name".into(),
                column_type: ColumnType::Varchar(4),
                not_null: true,
                primary_key: false,
                auto_increment: false,
                default: Some(Literal::Str("anon".into())),
            },
        ];
        TableSchema::new("Users", &defs)
    }

    #[test]
    fn names_are_lowercased() {
        let s = schema();
        assert_eq!(s.name, "users");
        assert_eq!(s.columns[0].name, "id");
    }

    #[test]
    fn primary_key_implies_not_null() {
        assert!(schema().columns[0].not_null);
        assert_eq!(schema().primary_key_index(), Some(0));
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("NAME").unwrap(), 1);
        assert!(matches!(
            s.column_index("nope"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn coercion_per_type() {
        let s = schema();
        assert_eq!(s.columns[0].coerce(Value::from("12abc")), Value::Int(12));
        // VARCHAR(4) truncates silently, as MySQL does in non-strict mode.
        assert_eq!(
            s.columns[1].coerce(Value::from("toolong")),
            Value::from("tool")
        );
        assert_eq!(s.columns[1].coerce(Value::Int(7)), Value::from("7"));
        assert_eq!(s.columns[0].coerce(Value::Null), Value::Null);
    }

    #[test]
    fn defaults_become_values() {
        let s = schema();
        assert_eq!(s.columns[1].default, Some(Value::from("anon")));
    }
}
