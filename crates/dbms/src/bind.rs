//! Server-side parameter binding (prepared statements).
//!
//! MySQL prepared statements ship parameter values *outside* the query
//! text: the data is never parsed as SQL, so no charset conversion or
//! quote processing applies to it. This is why binding is immune to the
//! semantic mismatch — and why a value like `ID34FG`+`U+02BC`+`-- ` can be
//! *stored* verbatim through a prepared `INSERT` and only explodes later
//! when legacy code re-embeds it into query text (the second-order attack
//! of the paper's Section II-D1).
//!
//! Binding replaces each `?` placeholder, in order, with a literal carrying
//! the bound [`Value`]. It runs *after* parsing (the template is
//! programmer-authored text) and *before* validation, lowering and the
//! SEPTIC hook — the hook therefore sees the bound values as data nodes,
//! just as SEPTIC inside MySQL sees the execution-time item list.

use septic_sql::ast::*;

use crate::error::DbError;
use crate::value::Value;

/// Replaces `?` placeholders with the given values, in order.
///
/// # Errors
///
/// [`DbError::Semantic`] when the placeholder count and value count differ.
pub fn bind_params(stmt: &Statement, params: &[Value]) -> Result<Statement, DbError> {
    let mut bound = stmt.clone();
    let mut iter = params.iter();
    bind_statement(&mut bound, &mut iter)?;
    if iter.next().is_some() {
        return Err(DbError::Semantic("too many bound parameters".into()));
    }
    Ok(bound)
}

fn too_few() -> DbError {
    DbError::Semantic("not enough bound parameters".into())
}

fn bind_statement<'a>(
    stmt: &mut Statement,
    params: &mut impl Iterator<Item = &'a Value>,
) -> Result<(), DbError> {
    match stmt {
        Statement::Select(s) => bind_select(s, params),
        Statement::Insert(i) => {
            match &mut i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            bind_expr(e, params)?;
                        }
                    }
                }
                InsertSource::Select(s) => bind_select(s, params)?,
            }
            Ok(())
        }
        Statement::Update(u) => {
            for (_, e) in &mut u.assignments {
                bind_expr(e, params)?;
            }
            if let Some(w) = &mut u.where_clause {
                bind_expr(w, params)?;
            }
            Ok(())
        }
        Statement::Delete(d) => {
            if let Some(w) = &mut d.where_clause {
                bind_expr(w, params)?;
            }
            Ok(())
        }
        Statement::CreateTable(_)
        | Statement::DropTable(_)
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback => Ok(()),
    }
}

fn bind_select<'a>(
    select: &mut Select,
    params: &mut impl Iterator<Item = &'a Value>,
) -> Result<(), DbError> {
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            bind_expr(expr, params)?;
        }
    }
    for join in &mut select.joins {
        if let Some(on) = &mut join.on {
            bind_expr(on, params)?;
        }
    }
    if let Some(w) = &mut select.where_clause {
        bind_expr(w, params)?;
    }
    for g in &mut select.group_by {
        bind_expr(g, params)?;
    }
    if let Some(h) = &mut select.having {
        bind_expr(h, params)?;
    }
    for o in &mut select.order_by {
        bind_expr(&mut o.expr, params)?;
    }
    if let Some((_, next)) = &mut select.union {
        bind_select(next, params)?;
    }
    Ok(())
}

fn value_to_literal(v: &Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(*i),
        Value::Real(r) => Literal::Float(*r),
        Value::Str(s) => Literal::Str(s.clone()),
    }
}

fn bind_expr<'a>(
    expr: &mut Expr,
    params: &mut impl Iterator<Item = &'a Value>,
) -> Result<(), DbError> {
    match expr {
        Expr::Param => {
            let v = params.next().ok_or_else(too_few)?;
            *expr = Expr::Literal(value_to_literal(v));
            Ok(())
        }
        Expr::Literal(_) | Expr::Column { .. } => Ok(()),
        Expr::Unary { operand, .. } => bind_expr(operand, params),
        Expr::Binary { left, right, .. } => {
            bind_expr(left, params)?;
            bind_expr(right, params)
        }
        Expr::Function { args, .. } => {
            for a in args {
                bind_expr(a, params)?;
            }
            Ok(())
        }
        Expr::IsNull { expr, .. } => bind_expr(expr, params),
        Expr::InList { expr, list, .. } => {
            bind_expr(expr, params)?;
            for e in list {
                bind_expr(e, params)?;
            }
            Ok(())
        }
        Expr::InSelect { expr, select, .. } => {
            bind_expr(expr, params)?;
            bind_select(select, params)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            bind_expr(expr, params)?;
            bind_expr(low, params)?;
            bind_expr(high, params)
        }
        Expr::Subquery(s) => bind_select(s, params),
        Expr::Exists { select, .. } => bind_select(select, params),
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                bind_expr(op, params)?;
            }
            for (w, t) in branches {
                bind_expr(w, params)?;
                bind_expr(t, params)?;
            }
            if let Some(e) = else_branch {
                bind_expr(e, params)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::parse;

    fn bind(sql: &str, params: &[Value]) -> Result<Statement, DbError> {
        let parsed = parse(sql).expect("parse");
        bind_params(&parsed.statements[0], params)
    }

    #[test]
    fn binds_in_order() {
        let s = bind(
            "SELECT * FROM t WHERE a = ? AND b = ?",
            &[Value::from("x"), Value::Int(2)],
        )
        .unwrap();
        let text = s.to_string();
        assert!(text.contains("a = 'x'") && text.contains("b = 2"), "{text}");
    }

    #[test]
    fn injection_in_bound_value_stays_data() {
        let s = bind("SELECT * FROM t WHERE a = ?", &[Value::from("' OR 1=1-- ")]).unwrap();
        // The payload is inside the literal; printing escapes it, and the
        // structure has exactly one comparison.
        let Statement::Select(sel) = &s else { panic!() };
        assert!(matches!(
            sel.where_clause,
            Some(Expr::Binary {
                op: BinaryOp::Eq,
                ..
            })
        ));
    }

    #[test]
    fn count_mismatches_error() {
        assert!(bind("SELECT * FROM t WHERE a = ?", &[]).is_err());
        assert!(bind("SELECT * FROM t WHERE a = 1", &[Value::Int(1)]).is_err());
        assert!(bind(
            "SELECT * FROM t WHERE a = ?",
            &[Value::Int(1), Value::Int(2)]
        )
        .is_err());
    }

    #[test]
    fn binds_inserts_updates_deletes() {
        let s = bind(
            "INSERT INTO t (a, b) VALUES (?, ?)",
            &[Value::from("v"), Value::Null],
        )
        .unwrap();
        assert!(s.to_string().contains("'v'"));
        let s = bind(
            "UPDATE t SET a = ? WHERE id = ?",
            &[Value::Int(1), Value::Int(2)],
        )
        .unwrap();
        assert!(s.to_string().contains("a = 1"));
        let s = bind("DELETE FROM t WHERE id = ?", &[Value::Int(3)]).unwrap();
        assert!(s.to_string().contains("id = 3"));
    }

    #[test]
    fn binds_nested_positions() {
        let s = bind(
            "SELECT CASE WHEN a = ? THEN ? ELSE 0 END FROM t \
             WHERE id IN (SELECT x FROM u WHERE y = ?) ORDER BY ?",
            &[
                Value::Int(1),
                Value::Int(2),
                Value::from("k"),
                Value::Int(1),
            ],
        );
        assert!(s.is_ok());
    }
}
