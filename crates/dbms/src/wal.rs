//! Durable storage engine: append-only WAL + checkpoint snapshots.
//!
//! The engine is a *logical redo log*: every acknowledged write is
//! appended to `wal.log` as a CRC32-framed record of rendered SQL
//! statements (with the logical clock value they executed under), and
//! recovery re-executes them in order against an empty database — the
//! same deterministic executor both engines already share.  Periodic
//! checkpoints serialize the whole database to `snapshot.db` (written to
//! a temp file, read back and verified, then installed with an atomic
//! rename, the same discipline as `septic-core`'s model store) and
//! truncate the log.
//!
//! Frame format, little-endian:
//!
//! ```text
//! | u32 payload_len | u32 crc32(payload) | payload (JSON WalRecord) |
//! ```
//!
//! A torn tail (truncated or bit-flipped last record, the crash window a
//! write-ahead log must survive) is **quarantined**: the bytes move to
//! `wal.log.corrupt`, the log is truncated to the valid prefix via
//! tmp+rename, the event is counted in telemetry, and the record is
//! never replayed.  Acknowledged commits live in earlier, CRC-valid
//! frames and always survive.
//!
//! Everything is threaded through the [`StorageIo`] seam so tests (and
//! `septic-faults`) can run the engine over in-memory files and script
//! torn writes at exact byte offsets.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::OnceLock;

use parking_lot::Mutex;
use septic_telemetry::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};

use crate::catalog::TableSchema;
use crate::error::DbError;
use crate::exec;
use crate::storage::{Database, Row, TableStore};

/// WAL file name (relative to the [`StorageIo`] root).
pub const WAL_FILE: &str = "wal.log";
/// Quarantine target for torn WAL tails.
pub const WAL_CORRUPT_FILE: &str = "wal.log.corrupt";
const WAL_TMP_FILE: &str = "wal.log.tmp";
/// Checkpoint snapshot file name.
pub const SNAPSHOT_FILE: &str = "snapshot.db";
/// Quarantine target for corrupt snapshots.
pub const SNAPSHOT_CORRUPT_FILE: &str = "snapshot.db.corrupt";
const SNAPSHOT_TMP_FILE: &str = "snapshot.db.tmp";

// ---------------------------------------------------------------------------
// StorageIo seam
// ---------------------------------------------------------------------------

/// Byte-level file operations the durability layer runs on.  Implemented
/// by [`FsIo`] (real files), [`MemIo`] (tests, forkable per recovery
/// case) and `septic-faults`' `FaultyIo` (scripted torn writes).
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`io::Error`] as the underlying medium reports it.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates a file with the given contents.
    ///
    /// # Errors
    ///
    /// [`io::Error`] as the underlying medium reports it.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends to a file, creating it when absent.
    ///
    /// # Errors
    ///
    /// [`io::Error`] as the underlying medium reports it.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Atomically renames a file.
    ///
    /// # Errors
    ///
    /// [`io::Error`] as the underlying medium reports it.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// True when the file exists.
    fn exists(&self, path: &Path) -> bool;
}

/// In-memory [`StorageIo`]: a map of paths to byte buffers.  `fork()`
/// clones the whole "disk", so one populated image can seed many
/// independent recovery runs (the per-case pattern the conformance
/// harness uses).
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<HashMap<PathBuf, Vec<u8>>>,
}

impl MemIo {
    /// An empty in-memory disk.
    #[must_use]
    pub fn new() -> Arc<MemIo> {
        Arc::new(MemIo::default())
    }

    /// Deep copy of the current disk image.
    #[must_use]
    pub fn fork(&self) -> Arc<MemIo> {
        Arc::new(MemIo {
            files: Mutex::new(self.files.lock().clone()),
        })
    }

    /// Raw contents of a file, if present.
    #[must_use]
    pub fn contents(&self, path: impl AsRef<Path>) -> Option<Vec<u8>> {
        self.files.lock().get(path.as_ref()).cloned()
    }

    /// Plants raw bytes at a path (corruption scripting).
    pub fn plant(&self, path: impl AsRef<Path>, data: Vec<u8>) {
        self.files.lock().insert(path.as_ref().to_path_buf(), data);
    }
}

impl StorageIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files.lock().insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock();
        let data = files.remove(from).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{}", from.display()))
        })?;
        files.insert(to.to_path_buf(), data);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().contains_key(path)
    }
}

/// Real-filesystem [`StorageIo`] rooted at a directory.  Appends and
/// writes are synced to the medium before acknowledging (a WAL append
/// that is not durable is not a WAL).
#[derive(Debug)]
pub struct FsIo {
    root: PathBuf,
}

impl FsIo {
    /// Creates the root directory (and parents) if needed.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Arc<FsIo>> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Arc::new(FsIo { root }))
    }

    fn resolve(&self, path: &Path) -> PathBuf {
        self.root.join(path)
    }
}

impl StorageIo for FsIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(self.resolve(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(self.resolve(path))?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.resolve(path))?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(self.resolve(from), self.resolve(to))
    }

    fn exists(&self, path: &Path) -> bool {
        self.resolve(path).exists()
    }
}

// ---------------------------------------------------------------------------
// frames
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3 polynomial) over `data` — the same checksum the
/// model store's envelope uses, reimplemented here because `dbms` sits
/// below `core` in the dependency order.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames a payload as `len | crc | payload`.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A torn (unreplayable) tail found while scanning frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the valid prefix ends.
    pub offset: usize,
    /// Human-readable reason (truncated header/payload, CRC mismatch).
    pub reason: String,
}

/// Splits a byte stream into CRC-valid frame payloads plus an optional
/// torn tail.  Scanning stops at the first bad frame: everything after a
/// torn record is unreachable redo state.
#[must_use]
pub fn scan_frames(bytes: &[u8]) -> (Vec<&[u8]>, Option<TornTail>) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            return (
                payloads,
                Some(TornTail {
                    offset: pos,
                    reason: format!("truncated header ({} of 8 bytes)", rest.len()),
                }),
            );
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if rest.len() < 8 + len {
            return (
                payloads,
                Some(TornTail {
                    offset: pos,
                    reason: format!("truncated payload (want {len}, have {})", rest.len() - 8),
                }),
            );
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return (
                payloads,
                Some(TornTail {
                    offset: pos,
                    reason: "crc mismatch".to_string(),
                }),
            );
        }
        payloads.push(payload);
        pos += 8 + len;
    }
    (payloads, None)
}

// ---------------------------------------------------------------------------
// records
// ---------------------------------------------------------------------------

/// One redo statement: the rendered SQL and the logical clock value it
/// executed under (so `NOW()` replays deterministically).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalStmt {
    pub now: i64,
    pub sql: String,
}

/// One commit record: an atomic batch of redo statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct WalRecord {
    seq: u64,
    stmts: Vec<WalStmt>,
}

#[derive(Debug, Serialize, Deserialize)]
struct TableSnapshot {
    schema: TableSchema,
    rows: Vec<Row>,
    next_auto_increment: i64,
}

#[derive(Debug, Serialize, Deserialize)]
struct DbSnapshot {
    version: u32,
    /// Highest WAL sequence covered by this snapshot; replay skips
    /// records at or below it.
    seq: u64,
    /// Logical clock at checkpoint time.
    clock: i64,
    tables: Vec<TableSnapshot>,
}

// ---------------------------------------------------------------------------
// the storage backend seam
// ---------------------------------------------------------------------------

/// The durability seam the server writes through.  The in-memory oracle
/// uses [`NullBackend`] (acknowledge immediately, persist nothing); the
/// durable engine uses [`WalStorage`].
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Persists an acknowledged commit (autocommit statement batch or
    /// explicit transaction).  Called under the server's write lock, so
    /// append order is apply order.
    ///
    /// # Errors
    ///
    /// [`DbError::Storage`] when the commit could not be made durable —
    /// the server then rolls the in-memory state back and the client
    /// never sees an acknowledgement.
    fn log_commit(&self, stmts: Vec<WalStmt>) -> Result<(), DbError>;

    /// Called after a durable commit with the post-commit database and
    /// clock; the WAL backend checkpoints here when the log is due.
    fn after_commit(&self, db: &Database, clock: i64);
}

/// No-op backend: the in-memory differential oracle.
#[derive(Debug, Default)]
pub struct NullBackend;

impl StorageBackend for NullBackend {
    fn log_commit(&self, _stmts: Vec<WalStmt>) -> Result<(), DbError> {
        Ok(())
    }

    fn after_commit(&self, _db: &Database, _clock: i64) {}
}

// ---------------------------------------------------------------------------
// the WAL engine
// ---------------------------------------------------------------------------

/// Durability tuning.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Checkpoint after this many commit records (0 = never).
    pub checkpoint_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            checkpoint_every: 256,
        }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Commit records re-executed from the WAL.
    pub replayed_records: u64,
    /// Individual statements re-executed.
    pub replayed_statements: u64,
    /// Torn tail records quarantined (0 or 1 per recovery).
    pub torn_records: u64,
    /// Statements that failed during replay (determinism violation —
    /// loud in telemetry, recovery continues).
    pub replay_errors: u64,
    /// True when a checkpoint snapshot was loaded.
    pub snapshot_loaded: bool,
    /// True when a corrupt snapshot was quarantined.
    pub snapshot_quarantined: bool,
    /// Tables in the recovered database.
    pub tables: usize,
    /// First safe logical clock value after recovery.
    pub next_clock: i64,
}

#[derive(Debug)]
struct WalState {
    next_seq: u64,
    commits_since_checkpoint: u64,
}

/// The WAL + checkpoint storage engine.
pub struct WalStorage {
    io: Arc<dyn StorageIo>,
    cfg: WalConfig,
    state: Mutex<WalState>,
    appends: Arc<Counter>,
    append_failures: Arc<Counter>,
    appended_bytes: Arc<Counter>,
    replayed_records: Arc<Counter>,
    replay_errors: Arc<Counter>,
    torn_records: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
    snapshots_quarantined: Arc<Counter>,
}

impl fmt::Debug for WalStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalStorage")
            .field("cfg", &self.cfg)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl WalStorage {
    /// Builds the engine over an IO seam, registering its counters in the
    /// given metrics registry (the server's, so `SHOW SEPTIC METRICS` and
    /// the Prometheus export include them).
    #[must_use]
    pub fn new(io: Arc<dyn StorageIo>, cfg: WalConfig, metrics: &MetricsRegistry) -> WalStorage {
        WalStorage {
            io,
            cfg,
            state: Mutex::new(WalState {
                next_seq: 1,
                commits_since_checkpoint: 0,
            }),
            appends: metrics.counter("dbms_wal_appends_total"),
            append_failures: metrics.counter("dbms_wal_append_failures_total"),
            appended_bytes: metrics.counter("dbms_wal_appended_bytes_total"),
            replayed_records: metrics.counter("dbms_wal_replayed_records_total"),
            replay_errors: metrics.counter("dbms_wal_replay_errors_total"),
            torn_records: metrics.counter("dbms_wal_torn_records_total"),
            checkpoints: metrics.counter("dbms_checkpoints_total"),
            checkpoint_failures: metrics.counter("dbms_checkpoint_failures_total"),
            snapshots_quarantined: metrics.counter("dbms_snapshots_quarantined_total"),
        }
    }

    /// Rebuilds the database: load the checkpoint snapshot (quarantining
    /// it if corrupt), then re-execute every CRC-valid WAL record above
    /// the snapshot's sequence.  A torn tail is quarantined to
    /// `wal.log.corrupt` and the log truncated to its valid prefix.
    ///
    /// # Errors
    ///
    /// [`DbError::Storage`] only for IO failures; corruption never fails
    /// recovery, it is quarantined and counted.
    pub fn recover(&self) -> Result<(Database, RecoveryReport), DbError> {
        let mut db = Database::new();
        let mut report = RecoveryReport::default();
        let mut base_seq = 0u64;
        let mut clock = 0i64;

        if self.io.exists(Path::new(SNAPSHOT_FILE)) {
            let bytes = self
                .io
                .read(Path::new(SNAPSHOT_FILE))
                .map_err(|e| DbError::Storage(format!("read {SNAPSHOT_FILE}: {e}")))?;
            match load_snapshot(&bytes) {
                Ok(snap) => {
                    base_seq = snap.seq;
                    clock = snap.clock;
                    report.snapshot_loaded = true;
                    for t in snap.tables {
                        let store = TableStore::restore(t.schema, t.rows, t.next_auto_increment)
                            .map_err(|e| {
                                DbError::Storage(format!("snapshot table invalid: {e}"))
                            })?;
                        db.install_table(store);
                    }
                }
                Err(_) => {
                    // Quarantine, count, and fall back to WAL-only replay.
                    self.snapshots_quarantined.inc();
                    report.snapshot_quarantined = true;
                    self.io
                        .rename(Path::new(SNAPSHOT_FILE), Path::new(SNAPSHOT_CORRUPT_FILE))
                        .map_err(|e| {
                            DbError::Storage(format!("quarantine {SNAPSHOT_FILE}: {e}"))
                        })?;
                }
            }
        }

        let mut max_seq = base_seq;
        if self.io.exists(Path::new(WAL_FILE)) {
            let bytes = self
                .io
                .read(Path::new(WAL_FILE))
                .map_err(|e| DbError::Storage(format!("read {WAL_FILE}: {e}")))?;
            let (payloads, mut torn) = scan_frames(&bytes);
            let mut valid_end = 0usize;
            for payload in payloads {
                let Ok(record) = decode_json::<WalRecord>(payload) else {
                    // CRC-valid but undecodable: treat as torn from here.
                    torn = Some(TornTail {
                        offset: valid_end,
                        reason: "undecodable record".to_string(),
                    });
                    break;
                };
                valid_end += 8 + payload.len();
                if record.seq <= base_seq {
                    continue; // covered by the checkpoint
                }
                max_seq = max_seq.max(record.seq);
                report.replayed_records += 1;
                self.replayed_records.inc();
                for stmt in record.stmts {
                    clock = clock.max(stmt.now);
                    report.replayed_statements += 1;
                    if replay_statement(&mut db, &stmt).is_err() {
                        report.replay_errors += 1;
                        self.replay_errors.inc();
                    }
                }
            }
            if let Some(tail) = torn {
                self.torn_records.inc();
                report.torn_records += 1;
                self.io
                    .append(Path::new(WAL_CORRUPT_FILE), &bytes[tail.offset..])
                    .map_err(|e| DbError::Storage(format!("quarantine WAL tail: {e}")))?;
                self.io
                    .write(Path::new(WAL_TMP_FILE), &bytes[..valid_end])
                    .map_err(|e| DbError::Storage(format!("truncate {WAL_FILE}: {e}")))?;
                self.io
                    .rename(Path::new(WAL_TMP_FILE), Path::new(WAL_FILE))
                    .map_err(|e| DbError::Storage(format!("truncate {WAL_FILE}: {e}")))?;
            }
        }

        self.state.lock().next_seq = max_seq + 1;
        report.tables = db.table_names().count();
        report.next_clock = clock + 1;
        Ok((db, report))
    }

    /// True when enough commits accumulated for a checkpoint.
    #[must_use]
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every > 0
            && self.state.lock().commits_since_checkpoint >= self.cfg.checkpoint_every
    }

    /// Serializes the database to the snapshot file (tmp → readback
    /// verify → atomic rename) and truncates the WAL it covers.
    ///
    /// # Errors
    ///
    /// [`DbError::Storage`] on IO or verification failure.  Every failure
    /// point leaves a recoverable state: either the old snapshot + full
    /// WAL, or the new snapshot + a WAL whose covered prefix replay
    /// skips by sequence number.
    pub fn checkpoint(&self, db: &Database, clock: i64) -> Result<(), DbError> {
        let result = self.try_checkpoint(db, clock);
        if result.is_err() {
            self.checkpoint_failures.inc();
        }
        result
    }

    fn try_checkpoint(&self, db: &Database, clock: i64) -> Result<(), DbError> {
        let mut state = self.state.lock();
        let snap = DbSnapshot {
            version: 1,
            seq: state.next_seq - 1,
            clock,
            tables: db
                .tables_sorted()
                .into_iter()
                .map(|t| TableSnapshot {
                    schema: t.schema.clone(),
                    rows: t.rows_snapshot(),
                    next_auto_increment: t.next_auto_increment(),
                })
                .collect(),
        };
        let payload = serde_json::to_string(&snap)
            .map_err(|e| DbError::Storage(format!("serialize: {e}")))?
            .into_bytes();
        let frame = encode_frame(&payload);
        self.io
            .write(Path::new(SNAPSHOT_TMP_FILE), &frame)
            .map_err(|e| DbError::Storage(format!("write {SNAPSHOT_TMP_FILE}: {e}")))?;
        let readback = self
            .io
            .read(Path::new(SNAPSHOT_TMP_FILE))
            .map_err(|e| DbError::Storage(format!("verify {SNAPSHOT_TMP_FILE}: {e}")))?;
        if readback != frame {
            return Err(DbError::Storage(
                "snapshot readback verification failed".to_string(),
            ));
        }
        self.io
            .rename(Path::new(SNAPSHOT_TMP_FILE), Path::new(SNAPSHOT_FILE))
            .map_err(|e| DbError::Storage(format!("install {SNAPSHOT_FILE}: {e}")))?;
        // Everything at or below snap.seq is covered; if this truncate
        // crashes, replay skips those records by sequence anyway.
        self.io
            .write(Path::new(WAL_FILE), &[])
            .map_err(|e| DbError::Storage(format!("truncate {WAL_FILE}: {e}")))?;
        state.commits_since_checkpoint = 0;
        self.checkpoints.inc();
        Ok(())
    }
}

impl StorageBackend for WalStorage {
    fn log_commit(&self, stmts: Vec<WalStmt>) -> Result<(), DbError> {
        let mut state = self.state.lock();
        let record = WalRecord {
            seq: state.next_seq,
            stmts,
        };
        let payload = serde_json::to_string(&record)
            .map_err(|e| DbError::Storage(format!("serialize commit: {e}")))?
            .into_bytes();
        let frame = encode_frame(&payload);
        if let Err(e) = self.io.append(Path::new(WAL_FILE), &frame) {
            self.append_failures.inc();
            return Err(DbError::Storage(format!("append {WAL_FILE}: {e}")));
        }
        state.next_seq += 1;
        state.commits_since_checkpoint += 1;
        self.appends.inc();
        self.appended_bytes.add(frame.len() as u64);
        Ok(())
    }

    fn after_commit(&self, db: &Database, clock: i64) {
        if self.should_checkpoint() {
            // Failure is counted (dbms_checkpoint_failures_total) and the
            // WAL keeps growing; the commit itself is already durable.
            let _ = self.checkpoint(db, clock);
        }
    }
}

fn load_snapshot(bytes: &[u8]) -> Result<DbSnapshot, String> {
    let (payloads, torn) = scan_frames(bytes);
    if let Some(tail) = torn {
        return Err(format!("corrupt snapshot: {}", tail.reason));
    }
    let [payload] = payloads.as_slice() else {
        return Err(format!(
            "corrupt snapshot: expected 1 frame, found {}",
            payloads.len()
        ));
    };
    let snap: DbSnapshot = decode_json(payload).map_err(|e| format!("corrupt snapshot: {e}"))?;
    if snap.version != 1 {
        return Err(format!("unsupported snapshot version {}", snap.version));
    }
    Ok(snap)
}

/// Decodes a JSON payload (the vendored `serde_json` only parses from
/// `&str`, so non-UTF-8 bytes are a decode failure like any other).
fn decode_json<T: serde::Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Re-executes one redo statement without any guard: recovery restores
/// state, re-detection of stored payloads happens afterwards through
/// `Server::scan_recovered`.
fn replay_statement(db: &mut Database, stmt: &WalStmt) -> Result<(), DbError> {
    let parsed = septic_sql::parse(&stmt.sql)?;
    for s in &parsed.statements {
        exec::execute(db, s, stmt.now)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new()
    }

    fn wal_over(io: Arc<dyn StorageIo>) -> WalStorage {
        WalStorage::new(io, WalConfig::default(), &registry())
    }

    fn stmt(sql: &str) -> WalStmt {
        WalStmt {
            now: 42,
            sql: sql.to_string(),
        }
    }

    #[test]
    fn frame_roundtrip_and_torn_detection() {
        let a = encode_frame(b"hello");
        let b = encode_frame(b"world!");
        let mut log = a.clone();
        log.extend_from_slice(&b);
        let (payloads, torn) = scan_frames(&log);
        assert_eq!(payloads, vec![b"hello".as_slice(), b"world!".as_slice()]);
        assert!(torn.is_none());

        // Truncated payload.
        let (payloads, torn) = scan_frames(&log[..a.len() + 9]);
        assert_eq!(payloads.len(), 1);
        assert_eq!(torn.unwrap().offset, a.len());

        // Bit flip in the payload.
        let mut flipped = log.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let (payloads, torn) = scan_frames(&flipped);
        assert_eq!(payloads.len(), 1);
        assert_eq!(torn.unwrap().reason, "crc mismatch");
    }

    #[test]
    fn log_and_recover_roundtrip() {
        let io = MemIo::new();
        let wal = wal_over(io.clone());
        wal.log_commit(vec![stmt(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32))",
        )])
        .unwrap();
        wal.log_commit(vec![stmt("INSERT INTO users (name) VALUES ('ann')")])
            .unwrap();
        wal.log_commit(vec![stmt("INSERT INTO users (name) VALUES ('bob')")])
            .unwrap();

        let fresh = wal_over(io.fork());
        let (db, report) = fresh.recover().unwrap();
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.torn_records, 0);
        assert_eq!(report.replay_errors, 0);
        assert_eq!(report.next_clock, 43);
        assert_eq!(db.table("users").unwrap().len(), 2);
        assert_eq!(
            db.table("users").unwrap().get_by_pk(2).unwrap()[1],
            crate::value::Value::from("bob")
        );
    }

    #[test]
    fn torn_tail_is_quarantined_not_replayed() {
        let io = MemIo::new();
        let wal = wal_over(io.clone());
        wal.log_commit(vec![stmt(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v VARCHAR(8))",
        )])
        .unwrap();
        wal.log_commit(vec![stmt("INSERT INTO t (v) VALUES ('ok')")])
            .unwrap();
        wal.log_commit(vec![stmt("INSERT INTO t (v) VALUES ('torn')")])
            .unwrap();
        // Tear the last record: drop its final 3 bytes.
        let mut log = io.contents(WAL_FILE).unwrap();
        log.truncate(log.len() - 3);
        io.plant(WAL_FILE, log);

        let fresh = wal_over(io.fork());
        let (db, report) = fresh.recover().unwrap();
        assert_eq!(report.replayed_records, 2);
        assert_eq!(report.torn_records, 1);
        assert_eq!(db.table("t").unwrap().len(), 1);

        // Quarantined, truncated, and a second recovery is clean.
        let fio = fresh_io_of(&fresh);
        assert!(fio.exists(Path::new(WAL_CORRUPT_FILE)));
        let truncated = fio.read(Path::new(WAL_FILE)).unwrap();
        let (payloads, torn) = scan_frames(&truncated);
        assert_eq!(payloads.len(), 2);
        assert!(torn.is_none());
        let (db2, report2) = wal_over(fio).recover().unwrap();
        assert_eq!(report2.torn_records, 0);
        assert_eq!(db2.table("t").unwrap().len(), 1);
    }

    fn fresh_io_of(wal: &WalStorage) -> Arc<dyn StorageIo> {
        wal.io.clone()
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovers() {
        let io = MemIo::new();
        let wal = WalStorage::new(
            io.clone(),
            WalConfig {
                checkpoint_every: 2,
            },
            &registry(),
        );
        let (mut db, _) = wal.recover().unwrap();
        let apply = |w: &WalStorage, db: &mut Database, sql: &str| {
            let parsed = septic_sql::parse(sql).unwrap();
            for s in &parsed.statements {
                exec::execute(db, s, 42).unwrap();
            }
            w.log_commit(vec![stmt(sql)]).unwrap();
            w.after_commit(db, 42);
        };
        apply(
            &wal,
            &mut db,
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v VARCHAR(8))",
        );
        apply(&wal, &mut db, "INSERT INTO t (v) VALUES ('a')");
        // checkpoint_every=2 → the snapshot exists and the WAL is empty.
        assert!(io.exists(Path::new(SNAPSHOT_FILE)));
        assert!(io.contents(WAL_FILE).unwrap().is_empty());
        apply(&wal, &mut db, "INSERT INTO t (v) VALUES ('b')");
        assert!(!io.contents(WAL_FILE).unwrap().is_empty());

        // Recovery = snapshot + WAL tail.
        let (rdb, report) = wal_over(io.fork()).recover().unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(rdb.table("t").unwrap().len(), 2);
        assert!(rdb.table("t").unwrap().get_by_pk(2).is_some());
    }

    #[test]
    fn corrupt_snapshot_is_quarantined() {
        let io = MemIo::new();
        let wal = WalStorage::new(
            io.clone(),
            WalConfig {
                checkpoint_every: 1,
            },
            &registry(),
        );
        let (mut db, _) = wal.recover().unwrap();
        let parsed = septic_sql::parse("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        exec::execute(&mut db, &parsed.statements[0], 1).unwrap();
        wal.log_commit(vec![stmt("CREATE TABLE t (id INT PRIMARY KEY)")])
            .unwrap();
        wal.after_commit(&db, 1);
        assert!(io.exists(Path::new(SNAPSHOT_FILE)));
        let mut snap = io.contents(SNAPSHOT_FILE).unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0xFF;
        io.plant(SNAPSHOT_FILE, snap);

        let (rdb, report) = wal_over(io.clone()).recover().unwrap();
        assert!(report.snapshot_quarantined);
        assert!(!report.snapshot_loaded);
        assert!(io.exists(Path::new(SNAPSHOT_CORRUPT_FILE)));
        assert!(!io.exists(Path::new(SNAPSHOT_FILE)));
        // The covering WAL was truncated at checkpoint, so the table is
        // gone — quarantine preserves the evidence, not the data.
        assert!(rdb.table("t").is_err());
    }

    #[test]
    fn fs_io_roundtrip() {
        let dir = std::env::temp_dir().join(format!("septic-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = FsIo::open(&dir).unwrap();
        let wal = wal_over(io.clone());
        wal.log_commit(vec![stmt("CREATE TABLE t (id INT PRIMARY KEY)")])
            .unwrap();
        let (db, report) = wal_over(FsIo::open(&dir).unwrap()).recover().unwrap();
        assert_eq!(report.replayed_records, 1);
        assert!(db.table("t").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
