//! Runtime values and MySQL's type-coercion semantics.
//!
//! MySQL's implicit conversions are a documented source of injection
//! surprises (another face of the *semantic mismatch*): a string compared
//! with a number is converted with a *leading numeric prefix* parse, so
//! `'1abc' = 1` is true and `'abc' = 0` is true. The executor reproduces
//! those rules here.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A runtime cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    #[default]
    Null,
    Int(i64),
    Real(f64),
    Str(String),
}

impl Value {
    /// True when the value is SQL `NULL`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// MySQL numeric coercion: strings parse their longest numeric prefix
    /// (`'1abc'` → 1, `'abc'` → 0), NULL stays NULL.
    #[must_use]
    pub fn to_real(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(*v as f64),
            Value::Real(v) => Some(*v),
            Value::Str(s) => Some(numeric_prefix(s)),
        }
    }

    /// Integer view (real values truncate toward zero, MySQL-style rounding
    /// differences are irrelevant for the reproduced workloads).
    #[must_use]
    pub fn to_int(&self) -> Option<i64> {
        self.to_real().map(|f| f as i64)
    }

    /// MySQL truthiness: non-zero numeric value. `'abc'` coerces to 0 and
    /// is false; `'1'` is true. NULL is neither (treated as false in WHERE).
    #[must_use]
    pub fn is_truthy(&self) -> bool {
        self.to_real().is_some_and(|f| f != 0.0)
    }

    /// String rendering used by `CONCAT` and friends.
    #[must_use]
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(v) => v.to_string(),
            Value::Real(v) => format_real(*v),
            Value::Str(s) => s.clone(),
        }
    }

    /// Three-valued SQL equality under MySQL coercion rules:
    /// `None` when either side is NULL.
    #[must_use]
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Three-valued comparison under MySQL coercion:
    ///
    /// * NULL on either side → `None`;
    /// * string vs string → binary (case-sensitive) string comparison is
    ///   what `utf8_bin` would do, but MySQL's default collations are
    ///   case-insensitive — we follow the default (`a = 'A'` is true);
    /// * any numeric operand → both sides coerce to numbers.
    #[must_use]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(case_insensitive_cmp(a, b)),
            _ => {
                let a = self.to_real()?;
                let b = other.to_real()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// NULL-safe equality (`<=>`): never NULL, NULL <=> NULL is true.
    #[must_use]
    pub fn null_safe_eq(&self, other: &Value) -> bool {
        match (self.is_null(), other.is_null()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => self.sql_eq(other).unwrap_or(false),
        }
    }

    /// `LIKE` pattern match (`%` and `_` wildcards, case-insensitive as in
    /// MySQL's default collation). Returns `None` if either side is NULL.
    #[must_use]
    pub fn sql_like(&self, pattern: &Value) -> Option<bool> {
        if self.is_null() || pattern.is_null() {
            return None;
        }
        let text = self.to_display_string().to_lowercase();
        let pat = pattern.to_display_string().to_lowercase();
        Some(like_match(
            &text.chars().collect::<Vec<_>>(),
            &pat.chars().collect::<Vec<_>>(),
        ))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => f.write_str(&format_real(*v)),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Case-folded string ordering without allocating lowercase copies (the
/// executor compares strings per row in WHERE evaluation).
fn case_insensitive_cmp(a: &str, b: &str) -> Ordering {
    let mut ai = a.chars().flat_map(char::to_lowercase);
    let mut bi = b.chars().flat_map(char::to_lowercase);
    loop {
        match (ai.next(), bi.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(x), Some(y)) => match x.cmp(&y) {
                Ordering::Equal => {}
                other => return other,
            },
        }
    }
}

fn format_real(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// MySQL's leading-numeric-prefix parse: skips leading whitespace, accepts
/// an optional sign, digits, one decimal point and an exponent; anything
/// after the prefix is ignored; no digits at all yields 0.
#[must_use]
pub fn numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0usize;
    let mut seen_digit = false;
    let mut seen_dot = false;
    if end < bytes.len() && (bytes[end] == b'+' || bytes[end] == b'-') {
        end += 1;
    }
    while end < bytes.len() {
        match bytes[end] {
            b'0'..=b'9' => {
                seen_digit = true;
                end += 1;
            }
            b'.' if !seen_dot => {
                seen_dot = true;
                end += 1;
            }
            b'e' | b'E' if seen_digit => {
                // exponent: e[+/-]digits — only accept if digits follow
                let mut k = end + 1;
                if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                    k += 1;
                }
                let exp_digits_start = k;
                while k < bytes.len() && bytes[k].is_ascii_digit() {
                    k += 1;
                }
                if k > exp_digits_start {
                    end = k;
                }
                break;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

fn like_match(text: &[char], pat: &[char]) -> bool {
    match pat.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => (0..=text.len()).any(|i| like_match(&text[i..], rest)),
        Some(('_', rest)) => !text.is_empty() && like_match(&text[1..], rest),
        Some((c, rest)) => text.first() == Some(c) && like_match(&text[1..], rest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_prefix_rules() {
        assert_eq!(numeric_prefix("1abc"), 1.0);
        assert_eq!(numeric_prefix("abc"), 0.0);
        assert_eq!(numeric_prefix("  -3.5x"), -3.5);
        assert_eq!(numeric_prefix("1e3zz"), 1000.0);
        assert_eq!(numeric_prefix("1e"), 1.0);
        assert_eq!(numeric_prefix(""), 0.0);
        assert_eq!(numeric_prefix("."), 0.0);
    }

    #[test]
    fn semantic_mismatch_comparisons() {
        // The classics: string/number type juggling.
        assert_eq!(Value::from("abc").sql_eq(&Value::Int(0)), Some(true));
        assert_eq!(Value::from("1abc").sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::from("2").sql_eq(&Value::Int(2)), Some(true));
        assert_eq!(Value::from("2x").sql_eq(&Value::from("2")), Some(false)); // str vs str
    }

    #[test]
    fn null_propagation() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(Value::Null.null_safe_eq(&Value::Null));
        assert!(!Value::Null.null_safe_eq(&Value::Int(0)));
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn string_comparison_is_case_insensitive() {
        assert_eq!(Value::from("Ann").sql_eq(&Value::from("ann")), Some(true));
        assert_eq!(
            Value::from("a").sql_cmp(&Value::from("B")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::from("1").is_truthy());
        assert!(!Value::from("abc").is_truthy());
        assert!(Value::Real(0.5).is_truthy());
    }

    #[test]
    fn like_wildcards() {
        let v = Value::from("hello world");
        assert_eq!(v.sql_like(&Value::from("hello%")), Some(true));
        assert_eq!(v.sql_like(&Value::from("%WORLD")), Some(true));
        assert_eq!(v.sql_like(&Value::from("h_llo%")), Some(true));
        assert_eq!(v.sql_like(&Value::from("nope")), Some(false));
        assert_eq!(v.sql_like(&Value::Null), None);
        assert_eq!(Value::from("").sql_like(&Value::from("%")), Some(true));
    }

    #[test]
    fn display_and_string_render() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Real(3.0).to_string(), "3");
        assert_eq!(Value::Real(3.25).to_string(), "3.25");
        assert_eq!(Value::Null.to_display_string(), "");
    }
}
