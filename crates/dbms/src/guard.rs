//! The pre-execution guard hook — where SEPTIC plugs into the engine.
//!
//! The paper: *"SEPTIC runs right before the execution step, after all
//! potential modifications have been applied to the queries"*. The server
//! calls the installed [`QueryGuard`] with the fully parsed, validated and
//! lowered query; the guard's [`GuardDecision`] determines whether the
//! executor runs.

use std::fmt;
use std::sync::Arc;

use septic_sql::{ItemStack, Statement};

/// Everything a guard can see about a query at the interception point.
///
/// Borrows the server's in-flight structures — the reproduction analogue
/// of SEPTIC reading MySQL's item list in place rather than copying it.
#[derive(Debug, Clone, Copy)]
pub struct QueryContext<'a> {
    /// The raw query text as received from the client (before charset
    /// decoding).
    pub raw_sql: &'a str,
    /// The query text after connection-charset decoding — what the parser
    /// actually consumed.
    pub decoded_sql: &'a str,
    /// Parsed statements (piggybacked queries arrive as several).
    pub statements: &'a [Statement],
    /// The validated item stack (the input to SEPTIC's QS).
    pub stack: &'a ItemStack,
    /// Bodies of `/* ... */` comments (external query identifiers).
    pub comments: &'a [String],
    /// True when a line comment swallowed the tail of the query.
    pub trailing_line_comment: bool,
    /// String literals appearing in `INSERT`/`UPDATE` statements — the
    /// candidate user inputs for stored-injection plugins.
    pub write_data: &'a [String],
}

impl QueryContext<'_> {
    /// The command name of the first statement (`SELECT`, `INSERT`, …).
    #[must_use]
    pub fn command(&self) -> &'static str {
        self.statements.first().map_or("EMPTY", Statement::command)
    }
}

/// What the server does when the guard itself *fails* — panics, or (for
/// guards with internal budgets) reports that it could not finish in time.
///
/// The guard sits in the query path: its failure must degrade predictably
/// instead of taking the engine down or silently disabling protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailurePolicy {
    /// Availability over protection: a failing guard lets the query
    /// execute (counted, so the degradation is visible).
    FailOpen,
    /// Protection over availability: a failing guard blocks the query
    /// with [`crate::DbError::GuardFailure`].
    FailClosed,
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailurePolicy::FailOpen => f.write_str("fail-open"),
            FailurePolicy::FailClosed => f.write_str("fail-closed"),
        }
    }
}

/// Guard verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardDecision {
    /// Let the executor run the query.
    Proceed,
    /// Drop the query; the client receives [`crate::DbError::Blocked`] with
    /// the given reason.
    Block(String),
}

impl fmt::Display for GuardDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardDecision::Proceed => f.write_str("proceed"),
            GuardDecision::Block(r) => write!(f, "block: {r}"),
        }
    }
}

/// A pre-execution query inspector (SEPTIC implements this).
pub trait QueryGuard: Send + Sync {
    /// Inspects a validated query immediately before execution.
    fn inspect(&self, ctx: &QueryContext<'_>) -> GuardDecision;

    /// Guard name for the server log.
    fn name(&self) -> &str {
        "guard"
    }

    /// Policy the server applies when [`QueryGuard::inspect`] panics.
    ///
    /// The default is [`FailurePolicy::FailClosed`]: an unknown guard
    /// failure blocks the query rather than silently disabling
    /// protection. Guards with mode-dependent policies (SEPTIC) override
    /// this per call.
    fn failure_policy(&self) -> FailurePolicy {
        FailurePolicy::FailClosed
    }

    /// Snapshot of the guard's own metrics, if it keeps any. The server
    /// merges this into its `SHOW SEPTIC STATUS` output and Prometheus
    /// export; guards without telemetry keep the `None` default.
    fn metrics(&self) -> Option<septic_telemetry::MetricsSnapshot> {
        None
    }

    /// Re-scans string values recovered from durable storage, returning
    /// how many the guard considers malicious.
    ///
    /// A freshly deployed guard has never seen payloads that were
    /// *stored* before it was installed (or before a restart); the
    /// server feeds it every recovered string cell after WAL replay so
    /// stored-injection payloads are re-detected from disk. Guards
    /// without stored-data plugins keep the `0` default.
    fn scan_stored(&self, values: &[String]) -> usize {
        let _ = values;
        0
    }
}

/// Shared guard handle installed on a server.
pub type SharedGuard = Arc<dyn QueryGuard>;

/// A guard that lets everything through (the "vanilla MySQL" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl QueryGuard for AllowAll {
    fn inspect(&self, _ctx: &QueryContext<'_>) -> GuardDecision {
        GuardDecision::Proceed
    }

    fn name(&self) -> &str {
        "allow-all"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_proceeds() {
        let stack = ItemStack::new();
        let ctx = QueryContext {
            raw_sql: "SELECT 1",
            decoded_sql: "SELECT 1",
            statements: &[],
            stack: &stack,
            comments: &[],
            trailing_line_comment: false,
            write_data: &[],
        };
        assert_eq!(AllowAll.inspect(&ctx), GuardDecision::Proceed);
        assert_eq!(ctx.command(), "EMPTY");
    }

    #[test]
    fn decision_display() {
        assert_eq!(GuardDecision::Proceed.to_string(), "proceed");
        assert_eq!(GuardDecision::Block("x".into()).to_string(), "block: x");
    }

    #[test]
    fn default_failure_policy_is_fail_closed() {
        assert_eq!(AllowAll.failure_policy(), FailurePolicy::FailClosed);
        assert_eq!(FailurePolicy::FailOpen.to_string(), "fail-open");
        assert_eq!(FailurePolicy::FailClosed.to_string(), "fail-closed");
    }
}
