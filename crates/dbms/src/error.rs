//! Engine error types.

use std::error::Error;
use std::fmt;

use septic_sql::ParseError;

/// Error returned by the query pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Front-end parse failure.
    Parse(ParseError),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column (optionally table-qualified).
    UnknownColumn(String),
    /// Table already exists.
    TableExists(String),
    /// Column count / value count mismatch, bad types, etc.
    Semantic(String),
    /// A NOT NULL constraint was violated.
    NotNull(String),
    /// Duplicate primary key.
    DuplicateKey(String),
    /// The query was dropped by an installed guard (SEPTIC in prevention
    /// mode). Carries the guard's reason string.
    Blocked(String),
    /// The guard itself failed (panicked) while inspecting the query and
    /// its failure policy is fail-closed, so the query was not executed.
    /// Distinct from [`DbError::Blocked`]: this is a defense *outage*, not
    /// a detection.
    GuardFailure(String),
    /// Runtime evaluation error (division by zero is NULL in MySQL, so this
    /// is rare — unsupported function etc.).
    Runtime(String),
    /// The durability layer failed (WAL append, checkpoint install,
    /// recovery). The statement was **not** acknowledged.
    Storage(String),
    /// A transaction could not commit (re-execution of its buffered writes
    /// conflicted with a concurrent commit) and was rolled back.
    TxnAborted(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            DbError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            DbError::TableExists(t) => write!(f, "table '{t}' already exists"),
            DbError::Semantic(m) => write!(f, "{m}"),
            DbError::NotNull(c) => write!(f, "column '{c}' cannot be null"),
            DbError::DuplicateKey(k) => write!(f, "duplicate entry '{k}' for primary key"),
            DbError::Blocked(r) => write!(f, "query blocked by guard: {r}"),
            DbError::GuardFailure(r) => {
                write!(f, "query rejected, guard failure (fail-closed): {r}")
            }
            DbError::Runtime(m) => write!(f, "runtime error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            DbError::UnknownTable("t".into()).to_string(),
            "unknown table 't'"
        );
        assert!(DbError::Blocked("sqli".into())
            .to_string()
            .contains("blocked"));
        let failure = DbError::GuardFailure("guard panicked".into()).to_string();
        assert!(failure.contains("guard failure") && failure.contains("fail-closed"));
    }
}
