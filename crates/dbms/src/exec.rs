//! Query evaluator and executor.
//!
//! Executes validated statements against the in-memory [`Database`] with
//! MySQL evaluation semantics: three-valued logic, implicit numeric
//! coercion, division-by-zero-is-NULL, case-insensitive identifiers.

use std::collections::HashMap;
use std::sync::Arc;

use septic_sql::ast::*;
use septic_vm::Vm;

use crate::catalog::TableSchema;
use crate::error::DbError;
use crate::expr::{call_scalar, is_aggregate, SideEffects};
use crate::plan::SelectPlan;
use crate::storage::{Database, Row};
use crate::value::Value;
use crate::vmexec::{self, ProgramCache};

/// Result of executing one statement.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Column labels (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Row>,
    /// Rows affected (INSERT/UPDATE/DELETE).
    pub affected: usize,
    /// `AUTO_INCREMENT` id of the last inserted row.
    pub last_insert_id: Option<i64>,
    /// Side effects (e.g. requested `SLEEP` time).
    pub effects: SideEffects,
}

impl QueryOutput {
    /// First cell of the first row, if any — the common app-code shortcut.
    #[must_use]
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// Executes a statement.
///
/// # Errors
///
/// Any [`DbError`] raised during name resolution, constraint checking or
/// evaluation.
pub fn execute(db: &mut Database, stmt: &Statement, now: i64) -> Result<QueryOutput, DbError> {
    execute_with(db, stmt, now, None)
}

/// [`execute`] with an optional compiled-expression program cache: WHERE
/// clauses and non-aggregate projections then run on the bytecode VM
/// (compiled once per statement shape) instead of the recursive walker.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with(
    db: &mut Database,
    stmt: &Statement,
    now: i64,
    cache: Option<&ProgramCache>,
) -> Result<QueryOutput, DbError> {
    let mut effects = SideEffects::default();
    let mut out = match stmt {
        Statement::Select(s) => {
            let (columns, rows) = run_select(db, s, now, None, cache, &mut effects)?;
            QueryOutput {
                columns,
                rows,
                ..QueryOutput::default()
            }
        }
        Statement::Insert(i) => run_insert(db, i, now, cache, &mut effects)?,
        Statement::Update(u) => run_update(db, u, now, cache, &mut effects)?,
        Statement::Delete(d) => run_delete(db, d, now, cache, &mut effects)?,
        Statement::CreateTable(c) => {
            let created =
                db.create_table(TableSchema::new(&c.name, &c.columns), c.if_not_exists)?;
            QueryOutput {
                affected: usize::from(created),
                ..QueryOutput::default()
            }
        }
        Statement::DropTable(d) => {
            let dropped = db.drop_table(&d.name, d.if_exists)?;
            QueryOutput {
                affected: usize::from(dropped),
                ..QueryOutput::default()
            }
        }
        // Transaction control is session state, handled by the server's
        // transactional path before execution ever starts.
        Statement::Begin | Statement::Commit | Statement::Rollback => {
            return Err(DbError::Semantic(format!(
                "{} reached the executor; transaction control is handled by the server",
                stmt.command()
            )))
        }
    };
    out.effects = effects;
    Ok(out)
}

/// True when executing the statement cannot mutate the database, so the
/// server may run it under a shared read lock ([`execute_read`]) and let
/// parallel sessions overlap.
#[must_use]
pub fn is_read_only(stmt: &Statement) -> bool {
    matches!(stmt, Statement::Select(_))
}

/// Executes a read-only statement (see [`is_read_only`]) against a shared
/// database reference — the concurrent-SELECT fast path.
///
/// # Errors
///
/// As [`execute`]; additionally [`DbError::Semantic`] if the statement is
/// not read-only (a server-side logic bug, not a user error).
pub fn execute_read(db: &Database, stmt: &Statement, now: i64) -> Result<QueryOutput, DbError> {
    execute_read_with(db, stmt, now, None)
}

/// [`execute_read`] with an optional compiled-expression program cache
/// (see [`execute_with`]).
///
/// # Errors
///
/// As [`execute_read`].
pub fn execute_read_with(
    db: &Database,
    stmt: &Statement,
    now: i64,
    cache: Option<&ProgramCache>,
) -> Result<QueryOutput, DbError> {
    let Statement::Select(s) = stmt else {
        return Err(DbError::Semantic(
            "execute_read called with a mutating statement".into(),
        ));
    };
    let mut effects = SideEffects::default();
    let (columns, rows) = run_select(db, s, now, None, cache, &mut effects)?;
    Ok(QueryOutput {
        columns,
        rows,
        effects,
        ..QueryOutput::default()
    })
}

/// Builds the FROM layout of a SELECT (including joined tables) and
/// returns the cached/compiled WHERE program — the shape a session would
/// use executing the statement. Test/bench support for observing program
/// sharing (`Arc::ptr_eq`) across sessions.
#[doc(hidden)]
#[must_use]
pub fn where_program(
    db: &Database,
    stmt: &Statement,
    cache: &ProgramCache,
) -> Option<Arc<septic_vm::Program>> {
    let Statement::Select(s) = stmt else {
        return None;
    };
    let plan = SelectPlan::build(db, s).ok()?;
    cache.program_for(plan.filter?, &plan.layout)
}

/// Statement-level validation: every referenced table must exist (this is
/// the "validated by the DBMS" step that runs before the SEPTIC hook).
///
/// # Errors
///
/// [`DbError::UnknownTable`] for missing tables.
pub fn validate(db: &Database, stmt: &Statement) -> Result<(), DbError> {
    let check = |name: &str| -> Result<(), DbError> {
        if db.has_table(name) {
            Ok(())
        } else {
            Err(DbError::UnknownTable(name.to_string()))
        }
    };
    match stmt {
        Statement::Select(s) => validate_select(db, s),
        Statement::Insert(i) => {
            check(&i.table)?;
            if let InsertSource::Select(s) = &i.source {
                validate_select(db, s)?;
            }
            Ok(())
        }
        Statement::Update(u) => check(&u.table),
        Statement::Delete(d) => check(&d.table),
        Statement::CreateTable(_) => Ok(()),
        Statement::DropTable(d) => {
            if d.if_exists {
                Ok(())
            } else {
                check(&d.name)
            }
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => Ok(()),
    }
}

fn validate_select(db: &Database, select: &Select) -> Result<(), DbError> {
    for arm in select.arms() {
        for t in &arm.from {
            if !db.has_table_or_virtual(&t.name) {
                return Err(DbError::UnknownTable(t.name.clone()));
            }
        }
        for j in &arm.joins {
            if !db.has_table_or_virtual(&j.table.name) {
                return Err(DbError::UnknownTable(j.table.name.clone()));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// evaluation context
// ---------------------------------------------------------------------------

/// One table binding in the FROM clause: the alias it is visible under plus
/// its schema.
pub(crate) struct Binding {
    pub(crate) name: String,
    pub(crate) schema: TableSchema,
}

/// A composite row: one storage row per binding (parallel to the layout).
#[derive(Debug, Clone)]
pub(crate) struct CRow {
    pub(crate) cells: Vec<Row>,
}

#[derive(Clone, Copy)]
struct EvalCtx<'a> {
    db: &'a Database,
    layout: &'a [Binding],
    row: &'a CRow,
    /// All rows of the current group when aggregating.
    group: Option<&'a [CRow]>,
    /// Enclosing scope for correlated subqueries.
    outer: Option<&'a EvalCtx<'a>>,
    now: i64,
}

impl<'a> EvalCtx<'a> {
    fn resolve(&self, table: Option<&str>, name: &str) -> Option<Value> {
        for (bi, binding) in self.layout.iter().enumerate() {
            if let Some(t) = table {
                if !binding.name.eq_ignore_ascii_case(t) {
                    continue;
                }
            }
            if let Ok(ci) = binding.schema.column_index(name) {
                return Some(self.row.cells[bi][ci].clone());
            }
            if table.is_some() {
                return None;
            }
        }
        self.outer.and_then(|o| o.resolve(table, name))
    }
}

fn eval(expr: &Expr, ctx: &EvalCtx<'_>, fx: &mut SideEffects) -> Result<Value, DbError> {
    match expr {
        Expr::Literal(Literal::Int(v)) => Ok(Value::Int(*v)),
        Expr::Literal(Literal::Float(v)) => Ok(Value::Real(*v)),
        Expr::Literal(Literal::Str(s)) => Ok(Value::Str(s.clone())),
        Expr::Literal(Literal::Null) => Ok(Value::Null),
        Expr::Param => Err(DbError::Runtime("unbound parameter".into())),
        Expr::Column { table, name } => ctx
            .resolve(table.as_deref(), name)
            .ok_or_else(|| DbError::UnknownColumn(name.clone())),
        Expr::Unary { op, operand } => {
            let v = eval(operand, ctx, fx)?;
            Ok(apply_unary(*op, v))
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, ctx, fx),
        Expr::Function { name, args } => {
            if is_aggregate(name) {
                return eval_aggregate(name, args, ctx, fx);
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, ctx, fx)?);
            }
            call_scalar(name, &vals, ctx.now, fx)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx, fx)?;
            Ok(Value::Int(i64::from(v.is_null() != *negated)))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval(expr, ctx, fx)?;
            if needle.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(item, ctx, fx)?;
                match needle.sql_eq(&v) {
                    Some(true) => return Ok(Value::Int(i64::from(!*negated))),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(i64::from(*negated)))
            }
        }
        Expr::InSelect {
            expr,
            select,
            negated,
        } => {
            let needle = eval(expr, ctx, fx)?;
            if needle.is_null() {
                return Ok(Value::Null);
            }
            let (_, rows) = run_select(ctx.db, select, ctx.now, Some(ctx), None, fx)?;
            let mut saw_null = false;
            for row in &rows {
                let v = row.first().cloned().unwrap_or(Value::Null);
                match needle.sql_eq(&v) {
                    Some(true) => return Ok(Value::Int(i64::from(!*negated))),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(i64::from(*negated)))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, ctx, fx)?;
            let lo = eval(low, ctx, fx)?;
            let hi = eval(high, ctx, fx)?;
            let ge = match v.sql_cmp(&lo) {
                None => return Ok(Value::Null),
                Some(o) => o != std::cmp::Ordering::Less,
            };
            let le = match v.sql_cmp(&hi) {
                None => return Ok(Value::Null),
                Some(o) => o != std::cmp::Ordering::Greater,
            };
            Ok(Value::Int(i64::from((ge && le) != *negated)))
        }
        Expr::Subquery(select) => {
            let (cols, rows) = run_select(ctx.db, select, ctx.now, Some(ctx), None, fx)?;
            if cols.len() != 1 {
                return Err(DbError::Semantic(
                    "scalar subquery must return one column".into(),
                ));
            }
            Ok(rows
                .into_iter()
                .next()
                .and_then(|mut r| r.drain(..).next())
                .unwrap_or(Value::Null))
        }
        Expr::Exists { select, negated } => {
            let (_, rows) = run_select(ctx.db, select, ctx.now, Some(ctx), None, fx)?;
            Ok(Value::Int(i64::from(rows.is_empty() == *negated)))
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            let op_val = operand.as_ref().map(|o| eval(o, ctx, fx)).transpose()?;
            for (when, then) in branches {
                let w = eval(when, ctx, fx)?;
                let hit = match &op_val {
                    Some(v) => v.sql_eq(&w) == Some(true),
                    None => w.is_truthy(),
                };
                if hit {
                    return eval(then, ctx, fx);
                }
            }
            match else_branch {
                Some(e) => eval(e, ctx, fx),
                None => Ok(Value::Null),
            }
        }
    }
}

fn eval_binary(
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
    ctx: &EvalCtx<'_>,
    fx: &mut SideEffects,
) -> Result<Value, DbError> {
    let l = eval(left, ctx, fx)?;
    let r = eval(right, ctx, fx)?;
    Ok(apply_binary(op, l, r))
}

/// Applies a unary operator to an evaluated operand — shared by the
/// recursive walker ([`eval`]) and the bytecode VM host
/// ([`crate::vmexec`]), so the two evaluation paths cannot drift.
pub(crate) fn apply_unary(op: UnaryOp, v: Value) -> Value {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            other => Value::Real(-other.to_real().unwrap_or(0.0)),
        },
        UnaryOp::Not => match v {
            Value::Null => Value::Null,
            other => Value::Int(i64::from(!other.is_truthy())),
        },
        UnaryOp::BitNot => match v.to_int() {
            None => Value::Null,
            Some(i) => Value::Int(!i),
        },
    }
}

/// Applies a binary operator to evaluated operands — the single
/// implementation of MySQL's coercion and three-valued logic, shared by
/// walker and VM (see [`apply_unary`]). `AND`/`OR`/`XOR` evaluate both
/// sides in MySQL (no short-circuit), so taking operands by value here
/// matches the walker exactly.
pub(crate) fn apply_binary(op: BinaryOp, l: Value, r: Value) -> Value {
    use BinaryOp::*;
    // Logical operators need MySQL's three-valued logic.
    if matches!(op, And | Or | Xor) {
        let lt = if l.is_null() {
            None
        } else {
            Some(l.is_truthy())
        };
        let rt = if r.is_null() {
            None
        } else {
            Some(r.is_truthy())
        };
        return match op {
            And => match (lt, rt) {
                (Some(false), _) | (_, Some(false)) => Value::Int(0),
                (Some(true), Some(true)) => Value::Int(1),
                _ => Value::Null,
            },
            Or => match (lt, rt) {
                (Some(true), _) | (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            },
            Xor => match (lt, rt) {
                (Some(a), Some(b)) => Value::Int(i64::from(a != b)),
                _ => Value::Null,
            },
            _ => unreachable!(),
        };
    }
    let cmp = |o: Option<std::cmp::Ordering>, f: fn(std::cmp::Ordering) -> bool| match o {
        None => Value::Null,
        Some(ord) => Value::Int(i64::from(f(ord))),
    };
    match op {
        Eq => cmp(l.sql_cmp(&r), |o| o == std::cmp::Ordering::Equal),
        Ne => cmp(l.sql_cmp(&r), |o| o != std::cmp::Ordering::Equal),
        Lt => cmp(l.sql_cmp(&r), |o| o == std::cmp::Ordering::Less),
        Le => cmp(l.sql_cmp(&r), |o| o != std::cmp::Ordering::Greater),
        Gt => cmp(l.sql_cmp(&r), |o| o == std::cmp::Ordering::Greater),
        Ge => cmp(l.sql_cmp(&r), |o| o != std::cmp::Ordering::Less),
        NullSafeEq => Value::Int(i64::from(l.null_safe_eq(&r))),
        Like => l
            .sql_like(&r)
            .map_or(Value::Null, |b| Value::Int(i64::from(b))),
        NotLike => l
            .sql_like(&r)
            .map_or(Value::Null, |b| Value::Int(i64::from(!b))),
        Add | Sub | Mul | Div | IntDiv | Mod => {
            let (Some(a), Some(b)) = (l.to_real(), r.to_real()) else {
                return Value::Null;
            };
            let both_int = matches!(l, Value::Int(_)) && matches!(r, Value::Int(_));
            match op {
                Add if both_int => Value::Int(a as i64 + b as i64),
                Sub if both_int => Value::Int(a as i64 - b as i64),
                Mul if both_int => Value::Int((a as i64).wrapping_mul(b as i64)),
                Add => Value::Real(a + b),
                Sub => Value::Real(a - b),
                Mul => Value::Real(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Real(a / b)
                    }
                }
                IntDiv => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Int((a / b) as i64)
                    }
                }
                Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Real(a % b)
                    }
                }
                _ => unreachable!(),
            }
        }
        BitAnd | BitOr | BitXor | Shl | Shr => {
            let (Some(a), Some(b)) = (l.to_int(), r.to_int()) else {
                return Value::Null;
            };
            match op {
                BitAnd => Value::Int(a & b),
                BitOr => Value::Int(a | b),
                BitXor => Value::Int(a ^ b),
                Shl => Value::Int(a.wrapping_shl(b as u32)),
                Shr => Value::Int(a.wrapping_shr(b as u32)),
                _ => unreachable!(),
            }
        }
        And | Or | Xor => unreachable!("handled above"),
    }
}

fn eval_aggregate(
    name: &str,
    args: &[Expr],
    ctx: &EvalCtx<'_>,
    fx: &mut SideEffects,
) -> Result<Value, DbError> {
    let group = ctx
        .group
        .ok_or_else(|| DbError::Semantic(format!("aggregate {name}() outside grouping")))?;
    let eval_member = |row: &CRow, e: &Expr, fx: &mut SideEffects| -> Result<Value, DbError> {
        let member_ctx = EvalCtx {
            row,
            group: None,
            ..*ctx
        };
        eval(e, &member_ctx, fx)
    };
    match name {
        "COUNT" => {
            if args.is_empty() {
                // COUNT(*)
                return Ok(Value::Int(group.len() as i64));
            }
            let mut n = 0i64;
            for row in group {
                if !eval_member(row, &args[0], fx)?.is_null() {
                    n += 1;
                }
            }
            Ok(Value::Int(n))
        }
        "SUM" | "AVG" => {
            let arg = args
                .first()
                .ok_or_else(|| DbError::Semantic(format!("{name}() requires an argument")))?;
            let mut sum = 0.0;
            let mut n = 0usize;
            for row in group {
                let v = eval_member(row, arg, fx)?;
                if let Some(f) = v.to_real() {
                    sum += f;
                    n += 1;
                }
            }
            if n == 0 {
                return Ok(Value::Null);
            }
            Ok(if name == "SUM" {
                Value::Real(sum)
            } else {
                Value::Real(sum / n as f64)
            })
        }
        "MIN" | "MAX" => {
            let arg = args
                .first()
                .ok_or_else(|| DbError::Semantic(format!("{name}() requires an argument")))?;
            let mut best: Option<Value> = None;
            for row in group {
                let v = eval_member(row, arg, fx)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Greater) => name == "MAX",
                            Some(std::cmp::Ordering::Less) => name == "MIN",
                            _ => false,
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        "GROUP_CONCAT" => {
            let arg = args
                .first()
                .ok_or_else(|| DbError::Semantic("GROUP_CONCAT() requires an argument".into()))?;
            let mut parts = Vec::new();
            for row in group {
                let v = eval_member(row, arg, fx)?;
                if !v.is_null() {
                    parts.push(v.to_display_string());
                }
            }
            if parts.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::Str(parts.join(",")))
            }
        }
        other => Err(DbError::Runtime(format!("unknown aggregate {other}()"))),
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

fn run_select(
    db: &Database,
    select: &Select,
    now: i64,
    outer: Option<&EvalCtx<'_>>,
    cache: Option<&ProgramCache>,
    fx: &mut SideEffects,
) -> Result<(Vec<String>, Vec<Row>), DbError> {
    let (columns, mut rows) = run_select_arm(db, select, now, outer, cache, fx)?;
    // UNION chain: arms concatenate; `UNION` (without ALL) deduplicates.
    if let Some((all, next)) = &select.union {
        let (next_cols, next_rows) = run_select(db, next, now, outer, cache, fx)?;
        if next_cols.len() != columns.len() {
            return Err(DbError::Semantic(
                "the used SELECT statements have a different number of columns".into(),
            ));
        }
        rows.extend(next_rows);
        if !all {
            let mut seen = std::collections::HashSet::new();
            rows.retain(|r| seen.insert(row_key(r)));
        }
    }
    Ok((columns, rows))
}

fn row_key(row: &Row) -> String {
    let mut k = String::new();
    for v in row {
        k.push_str(&format!("{v:?}"));
        k.push('\u{1f}');
    }
    k
}

/// Plans one SELECT arm and interprets the resulting stage pipeline.
/// Each stage maps onto one plan node family (see [`crate::plan`]).
fn run_select_arm(
    db: &Database,
    select: &Select,
    now: i64,
    outer: Option<&EvalCtx<'_>>,
    cache: Option<&ProgramCache>,
    fx: &mut SideEffects,
) -> Result<(Vec<String>, Vec<Row>), DbError> {
    // Compiled programs only serve top-level (uncorrelated) evaluation:
    // a correlated subquery resolves columns through the outer scope,
    // which the compiler does not model.
    let cache = if outer.is_none() { cache } else { None };
    let plan = SelectPlan::build(db, select)?;
    let rows = scan_stage(db, &plan)?;
    let rows = join_stage(db, &plan, rows, outer, now, fx)?;
    let rows = filter_stage(db, &plan, rows, outer, cache, now, fx)?;
    let result = emit_stage(db, &plan, rows, outer, cache, now, fx)?;
    let result = limit_stage(&plan, result);
    Ok((plan.project.columns.clone(), result))
}

/// Scan: cartesian product of the FROM tables. With no FROM there is a
/// single empty composite row (`SELECT 1`).
fn scan_stage(db: &Database, plan: &SelectPlan<'_>) -> Result<Vec<CRow>, DbError> {
    let mut rows: Vec<CRow> = vec![CRow { cells: Vec::new() }];
    for t in &plan.scan {
        let store = db.table_or_virtual(&t.name)?;
        let mut next = Vec::new();
        for base in &rows {
            for (_, row) in store.scan() {
                let mut cells = base.cells.clone();
                cells.push(row.clone());
                next.push(CRow { cells });
            }
        }
        rows = next;
    }
    Ok(rows)
}

/// Nested-loop joins, in plan order. Only the layout prefix up to the
/// joined binding is visible to the ON predicate — later joins have not
/// produced cells yet. LEFT joins null-pad probe rows with no match.
fn join_stage(
    db: &Database,
    plan: &SelectPlan<'_>,
    mut rows: Vec<CRow>,
    outer: Option<&EvalCtx<'_>>,
    now: i64,
    fx: &mut SideEffects,
) -> Result<Vec<CRow>, DbError> {
    for join in &plan.joins {
        let store = db.table_or_virtual(&join.table.name)?;
        let visible = &plan.layout[..=join.binding];
        let mut next = Vec::new();
        for base in &rows {
            let mut matched = false;
            for (_, row) in store.scan() {
                let mut cells = base.cells.clone();
                cells.push(row.clone());
                let candidate = CRow { cells };
                let keep = match join.on {
                    None => true,
                    Some(on) => {
                        let ctx = EvalCtx {
                            db,
                            layout: visible,
                            row: &candidate,
                            group: None,
                            outer,
                            now,
                        };
                        eval(on, &ctx, fx)?.is_truthy()
                    }
                };
                if keep {
                    matched = true;
                    next.push(candidate);
                }
            }
            if !matched && join.kind == JoinKind::Left {
                let mut cells = base.cells.clone();
                cells.push(vec![
                    Value::Null;
                    plan.layout[join.binding].schema.columns.len()
                ]);
                next.push(CRow { cells });
            }
        }
        rows = next;
    }
    Ok(rows)
}

/// Filter: the WHERE per-row hot loop. With a program cache the predicate
/// runs as a compiled program on a reusable VM stack; otherwise (or for
/// walker-only shapes in the negative cache) the recursive evaluator runs
/// as before.
fn filter_stage(
    db: &Database,
    plan: &SelectPlan<'_>,
    rows: Vec<CRow>,
    outer: Option<&EvalCtx<'_>>,
    cache: Option<&ProgramCache>,
    now: i64,
    fx: &mut SideEffects,
) -> Result<Vec<CRow>, DbError> {
    let Some(where_clause) = plan.filter else {
        return Ok(rows);
    };
    let compiled = cache.and_then(|c| c.program_for(where_clause, &plan.layout));
    let mut kept = Vec::new();
    if let Some(program) = compiled {
        let mut slots = Vec::new();
        vmexec::collect_literals(where_clause, &mut slots);
        debug_assert_eq!(slots.len(), program.slots() as usize);
        let mut vm = Vm::new();
        for row in rows {
            let mut host = vmexec::ExprHost {
                slots: &slots,
                row: &row,
                now,
                fx,
            };
            if vm.run(&program, &mut host)?.is_truthy() {
                kept.push(row);
            }
        }
    } else {
        for row in rows {
            let ctx = EvalCtx {
                db,
                layout: &plan.layout,
                row: &row,
                group: None,
                outer,
                now,
            };
            if eval(where_clause, &ctx, fx)?.is_truthy() {
                kept.push(row);
            }
        }
    }
    Ok(kept)
}

/// Aggregate + Project + Sort + Distinct: turns filtered composite rows
/// into output rows. Grouping (when the plan has an aggregate stage)
/// partitions by the GROUP BY key vector — or one synthetic all-rows
/// group — applies HAVING per group, then projects one row per group.
#[allow(clippy::too_many_lines)]
fn emit_stage(
    db: &Database,
    plan: &SelectPlan<'_>,
    rows: Vec<CRow>,
    outer: Option<&EvalCtx<'_>>,
    cache: Option<&ProgramCache>,
    now: i64,
    fx: &mut SideEffects,
) -> Result<Vec<Row>, DbError> {
    let layout = &plan.layout;
    let columns = &plan.project.columns;

    // Compile non-aggregate projection expressions once for the whole
    // result set; items that stay on the walker keep `None`.
    let item_programs: Vec<Option<(Arc<septic_vm::Program>, Vec<Value>)>> = plan
        .project
        .items
        .iter()
        .map(|item| match (cache, item) {
            (Some(c), SelectItem::Expr { expr, .. }) => {
                c.program_for(expr, layout).map(|program| {
                    let mut slots = Vec::new();
                    vmexec::collect_literals(expr, &mut slots);
                    debug_assert_eq!(slots.len(), program.slots() as usize);
                    (program, slots)
                })
            }
            _ => None,
        })
        .collect();
    let project_vm = std::cell::RefCell::new(Vm::new());

    let project =
        |row: &CRow, group: Option<&[CRow]>, fx: &mut SideEffects| -> Result<Row, DbError> {
            let ctx = EvalCtx {
                db,
                layout,
                row,
                group,
                outer,
                now,
            };
            let mut out = Vec::with_capacity(columns.len());
            for (ii, item) in plan.project.items.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        for (bi, _) in layout.iter().enumerate() {
                            out.extend(row.cells[bi].iter().cloned());
                        }
                    }
                    SelectItem::QualifiedWildcard(t) => {
                        let bi = layout
                            .iter()
                            .position(|b| b.name.eq_ignore_ascii_case(t))
                            .ok_or_else(|| DbError::UnknownTable(t.clone()))?;
                        out.extend(row.cells[bi].iter().cloned());
                    }
                    SelectItem::Expr { expr, .. } => match &item_programs[ii] {
                        Some((program, slots)) => {
                            let mut host = vmexec::ExprHost {
                                slots,
                                row,
                                now,
                                fx,
                            };
                            out.push(project_vm.borrow_mut().run(program, &mut host)?);
                        }
                        None => out.push(eval(expr, &ctx, fx)?),
                    },
                }
            }
            Ok(out)
        };

    let mut result: Vec<Row>;
    if let Some(agg) = &plan.aggregate {
        // group rows
        let mut groups: Vec<(CRow, Vec<CRow>)> = Vec::new();
        if agg.group_by.is_empty() {
            let rep = rows.first().cloned().unwrap_or(CRow {
                cells: layout
                    .iter()
                    .map(|b| vec![Value::Null; b.schema.columns.len()])
                    .collect(),
            });
            groups.push((rep, rows));
        } else {
            let mut index: HashMap<String, usize> = HashMap::new();
            for row in rows {
                let ctx = EvalCtx {
                    db,
                    layout,
                    row: &row,
                    group: None,
                    outer,
                    now,
                };
                let mut key = String::new();
                for g in agg.group_by {
                    key.push_str(&format!("{:?}", eval(g, &ctx, fx)?));
                    key.push('\u{1f}');
                }
                match index.get(&key) {
                    Some(&gi) => groups[gi].1.push(row),
                    None => {
                        index.insert(key, groups.len());
                        groups.push((row.clone(), vec![row]));
                    }
                }
            }
            // With GROUP BY and no matching rows there is no output at all.
        }
        // HAVING + projection
        result = Vec::new();
        let mut order_keys: Vec<Vec<Value>> = Vec::new();
        for (rep, members) in &groups {
            if let Some(h) = agg.having {
                let ctx = EvalCtx {
                    db,
                    layout,
                    row: rep,
                    group: Some(members),
                    outer,
                    now,
                };
                if !eval(h, &ctx, fx)?.is_truthy() {
                    continue;
                }
            }
            result.push(project(rep, Some(members), fx)?);
            if !plan.order_by.is_empty() {
                let ctx = EvalCtx {
                    db,
                    layout,
                    row: rep,
                    group: Some(members),
                    outer,
                    now,
                };
                let mut keys = Vec::new();
                for o in plan.order_by {
                    keys.push(order_key(&o.expr, &ctx, &result[result.len() - 1], fx)?);
                }
                order_keys.push(keys);
            }
        }
        if !plan.order_by.is_empty() {
            result = sort_rows(result, order_keys, plan.order_by);
        }
    } else {
        // ORDER BY over raw rows, then project
        if !plan.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, CRow)> = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = EvalCtx {
                    db,
                    layout,
                    row: &row,
                    group: None,
                    outer,
                    now,
                };
                let projected = project(&row, None, fx)?;
                let mut keys = Vec::new();
                for o in plan.order_by {
                    keys.push(order_key(&o.expr, &ctx, &projected, fx)?);
                }
                keyed.push((keys, row));
            }
            keyed.sort_by(|a, b| compare_key_vecs(&a.0, &b.0, plan.order_by));
            result = Vec::with_capacity(keyed.len());
            for (_, row) in keyed {
                result.push(project(&row, None, fx)?);
            }
        } else {
            result = Vec::with_capacity(rows.len());
            for row in &rows {
                result.push(project(row, None, fx)?);
            }
        }
        if plan.distinct {
            let mut seen = std::collections::HashSet::new();
            result.retain(|r| seen.insert(row_key(r)));
        }
    }
    Ok(result)
}

/// LIMIT/OFFSET over the emitted rows.
fn limit_stage(plan: &SelectPlan<'_>, result: Vec<Row>) -> Vec<Row> {
    let Some(limit) = plan.limit else {
        return result;
    };
    let start = (limit.offset as usize).min(result.len());
    let end = start.saturating_add(limit.count as usize).min(result.len());
    result[start..end].to_vec()
}

/// ORDER BY key: positional `ORDER BY 2` picks the projected column (the
/// form union-based injection probes use); otherwise evaluate the
/// expression.
fn order_key(
    expr: &Expr,
    ctx: &EvalCtx<'_>,
    projected: &Row,
    fx: &mut SideEffects,
) -> Result<Value, DbError> {
    if let Expr::Literal(Literal::Int(n)) = expr {
        let idx = *n as usize;
        if idx == 0 || idx > projected.len() {
            return Err(DbError::Semantic(format!(
                "unknown column '{n}' in order clause"
            )));
        }
        return Ok(projected[idx - 1].clone());
    }
    eval(expr, ctx, fx)
}

fn compare_key_vecs(a: &[Value], b: &[Value], order: &[OrderBy]) -> std::cmp::Ordering {
    for (i, o) in order.iter().enumerate() {
        let ord = match (a[i].is_null(), b[i].is_null()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less, // NULLs sort first in MySQL ASC
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => a[i].sql_cmp(&b[i]).unwrap_or(std::cmp::Ordering::Equal),
        };
        let ord = if o.descending { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

fn sort_rows(rows: Vec<Row>, keys: Vec<Vec<Value>>, order: &[OrderBy]) -> Vec<Row> {
    let mut zipped: Vec<(Vec<Value>, Row)> = keys.into_iter().zip(rows).collect();
    zipped.sort_by(|a, b| compare_key_vecs(&a.0, &b.0, order));
    zipped.into_iter().map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// INSERT / UPDATE / DELETE
// ---------------------------------------------------------------------------

fn run_insert(
    db: &mut Database,
    insert: &Insert,
    now: i64,
    cache: Option<&ProgramCache>,
    fx: &mut SideEffects,
) -> Result<QueryOutput, DbError> {
    let schema = db.table(&insert.table)?.schema.clone();
    // Resolve target column indexes.
    let targets: Vec<usize> = if insert.columns.is_empty() {
        (0..schema.columns.len()).collect()
    } else {
        insert
            .columns
            .iter()
            .map(|c| schema.column_index(c))
            .collect::<Result<_, _>>()?
    };
    let source_rows: Vec<Row> = match &insert.source {
        InsertSource::Values(rows) => {
            let layout: Vec<Binding> = Vec::new();
            let crow = CRow { cells: Vec::new() };
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != targets.len() {
                    return Err(DbError::Semantic(
                        "column count doesn't match value count".into(),
                    ));
                }
                let ctx = EvalCtx {
                    db,
                    layout: &layout,
                    row: &crow,
                    group: None,
                    outer: None,
                    now,
                };
                let mut vals = Vec::with_capacity(row.len());
                for e in row {
                    vals.push(eval(e, &ctx, fx)?);
                }
                out.push(vals);
            }
            out
        }
        InsertSource::Select(select) => {
            let (cols, rows) = run_select(db, select, now, None, cache, fx)?;
            if cols.len() != targets.len() {
                return Err(DbError::Semantic(
                    "column count doesn't match value count".into(),
                ));
            }
            rows
        }
    };
    let mut affected = 0usize;
    let mut last_id = None;
    for vals in source_rows {
        let mut full: Row = schema
            .columns
            .iter()
            .map(|c| c.default.clone().unwrap_or(Value::Null))
            .collect();
        for (v, &ti) in vals.into_iter().zip(&targets) {
            full[ti] = schema.columns[ti].coerce(v);
        }
        let store = db.table_mut(&insert.table)?;
        let slot = store.insert(full)?;
        if let Some(pk) = store.schema.primary_key_index() {
            last_id = store
                .scan()
                .find(|(s, _)| *s == slot)
                .and_then(|(_, row)| row[pk].to_int());
        }
        affected += 1;
    }
    Ok(QueryOutput {
        affected,
        last_insert_id: last_id,
        ..QueryOutput::default()
    })
}

fn run_update(
    db: &mut Database,
    update: &Update,
    now: i64,
    cache: Option<&ProgramCache>,
    fx: &mut SideEffects,
) -> Result<QueryOutput, DbError> {
    let schema = db.table(&update.table)?.schema.clone();
    let layout = vec![Binding {
        name: schema.name.clone(),
        schema: schema.clone(),
    }];
    let targets: Vec<usize> = update
        .assignments
        .iter()
        .map(|(c, _)| schema.column_index(c))
        .collect::<Result<_, _>>()?;
    // Compile-once fast path for the WHERE predicate (literals go to slots).
    let compiled = match (&update.where_clause, cache) {
        (Some(w), Some(c)) => c.program_for(w, &layout).map(|program| {
            let mut slots = Vec::with_capacity(program.slots() as usize);
            if let Some(w) = &update.where_clause {
                vmexec::collect_literals(w, &mut slots);
            }
            (program, slots)
        }),
        _ => None,
    };
    let mut vm = Vm::new();
    // Plan phase (immutable): decide slot → new row.
    let mut plan: Vec<(usize, Row)> = Vec::new();
    {
        let store = db.table(&update.table)?;
        for (slot, row) in store.scan() {
            let crow = CRow {
                cells: vec![row.clone()],
            };
            let ctx = EvalCtx {
                db,
                layout: &layout,
                row: &crow,
                group: None,
                outer: None,
                now,
            };
            let keep = if let Some((program, slots)) = &compiled {
                let mut host = vmexec::ExprHost {
                    slots,
                    row: &crow,
                    now,
                    fx,
                };
                vm.run(program, &mut host)?.is_truthy()
            } else {
                match &update.where_clause {
                    None => true,
                    Some(w) => eval(w, &ctx, fx)?.is_truthy(),
                }
            };
            if !keep {
                continue;
            }
            let mut new_row = row.clone();
            for ((_, e), &ti) in update.assignments.iter().zip(&targets) {
                new_row[ti] = schema.columns[ti].coerce(eval(e, &ctx, fx)?);
            }
            plan.push((slot, new_row));
            if let Some(l) = &update.limit {
                if plan.len() as u64 >= l.count {
                    break;
                }
            }
        }
    }
    let affected = plan.len();
    let store = db.table_mut(&update.table)?;
    for (slot, new_row) in plan {
        store.update_slot(slot, new_row)?;
    }
    Ok(QueryOutput {
        affected,
        ..QueryOutput::default()
    })
}

fn run_delete(
    db: &mut Database,
    delete: &Delete,
    now: i64,
    cache: Option<&ProgramCache>,
    fx: &mut SideEffects,
) -> Result<QueryOutput, DbError> {
    let schema = db.table(&delete.table)?.schema.clone();
    let layout = vec![Binding {
        name: schema.name.clone(),
        schema,
    }];
    let compiled = match (&delete.where_clause, cache) {
        (Some(w), Some(c)) => c.program_for(w, &layout).map(|program| {
            let mut slots = Vec::with_capacity(program.slots() as usize);
            if let Some(w) = &delete.where_clause {
                vmexec::collect_literals(w, &mut slots);
            }
            (program, slots)
        }),
        _ => None,
    };
    let mut vm = Vm::new();
    let mut victims: Vec<usize> = Vec::new();
    {
        let store = db.table(&delete.table)?;
        for (slot, row) in store.scan() {
            let crow = CRow {
                cells: vec![row.clone()],
            };
            let ctx = EvalCtx {
                db,
                layout: &layout,
                row: &crow,
                group: None,
                outer: None,
                now,
            };
            let hit = if let Some((program, slots)) = &compiled {
                let mut host = vmexec::ExprHost {
                    slots,
                    row: &crow,
                    now,
                    fx,
                };
                vm.run(program, &mut host)?.is_truthy()
            } else {
                match &delete.where_clause {
                    None => true,
                    Some(w) => eval(w, &ctx, fx)?.is_truthy(),
                }
            };
            if hit {
                victims.push(slot);
                if let Some(l) = &delete.limit {
                    if victims.len() as u64 >= l.count {
                        break;
                    }
                }
            }
        }
    }
    let affected = victims.len();
    let store = db.table_mut(&delete.table)?;
    for slot in victims {
        store.delete_slot(slot);
    }
    Ok(QueryOutput {
        affected,
        ..QueryOutput::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use septic_sql::parse;

    fn run(db: &mut Database, sql: &str) -> QueryOutput {
        let parsed = parse(sql).unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        execute(db, &parsed.statements[0], 1000).unwrap_or_else(|e| panic!("exec `{sql}`: {e}"))
    }

    fn run_err(db: &mut Database, sql: &str) -> DbError {
        let parsed = parse(sql).expect("parse ok");
        execute(db, &parsed.statements[0], 1000).expect_err("expected error")
    }

    fn fixture() -> Database {
        let mut db = Database::new();
        run(
            &mut db,
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, \
             name VARCHAR(32) NOT NULL, age INT, city VARCHAR(32))",
        );
        run(
            &mut db,
            "INSERT INTO users (name, age, city) VALUES \
             ('ann', 31, 'lisbon'), ('bob', 25, 'porto'), ('cyn', 42, 'lisbon'), \
             ('dan', NULL, 'faro')",
        );
        db
    }

    #[test]
    fn insert_select_roundtrip() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT name FROM users WHERE age > 30 ORDER BY name",
        );
        assert_eq!(
            out.rows,
            vec![vec![Value::from("ann")], vec![Value::from("cyn")]]
        );
    }

    #[test]
    fn select_star_and_columns() {
        let mut db = fixture();
        let out = run(&mut db, "SELECT * FROM users WHERE id = 1");
        assert_eq!(out.columns, vec!["id", "name", "age", "city"]);
        assert_eq!(out.rows[0][1], Value::from("ann"));
    }

    #[test]
    fn where_with_coercion_tautology() {
        // '1'='1' is a tautology; every row matches.
        let mut db = fixture();
        let out = run(&mut db, "SELECT id FROM users WHERE name = '' OR '1'='1'");
        assert_eq!(out.rows.len(), 4);
        // 'abc' = 0 — MySQL numeric coercion.
        let out = run(&mut db, "SELECT id FROM users WHERE 'abc' = 0");
        assert_eq!(out.rows.len(), 4);
    }

    #[test]
    fn null_semantics_in_where() {
        let mut db = fixture();
        // dan has NULL age: NULL > 30 is NULL → filtered out.
        let out = run(&mut db, "SELECT name FROM users WHERE age > 0");
        assert_eq!(out.rows.len(), 3);
        let out = run(&mut db, "SELECT name FROM users WHERE age IS NULL");
        assert_eq!(out.rows, vec![vec![Value::from("dan")]]);
    }

    #[test]
    fn update_and_delete_affect_counts() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "UPDATE users SET city = 'lx' WHERE city = 'lisbon'",
        );
        assert_eq!(out.affected, 2);
        let out = run(&mut db, "DELETE FROM users WHERE city = 'lx'");
        assert_eq!(out.affected, 2);
        let out = run(&mut db, "SELECT COUNT(*) FROM users");
        assert_eq!(out.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn update_with_limit() {
        let mut db = fixture();
        let out = run(&mut db, "UPDATE users SET age = 0 LIMIT 2");
        assert_eq!(out.affected, 2);
    }

    #[test]
    fn aggregates() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT COUNT(*), AVG(age), MIN(age), MAX(age) FROM users",
        );
        assert_eq!(
            out.rows[0],
            vec![
                Value::Int(4),
                Value::Real((31.0 + 25.0 + 42.0) / 3.0),
                Value::Int(25),
                Value::Int(42)
            ]
        );
    }

    #[test]
    fn count_on_empty_table_is_zero() {
        let mut db = fixture();
        run(&mut db, "DELETE FROM users");
        let out = run(&mut db, "SELECT COUNT(*) FROM users");
        assert_eq!(out.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn group_by_and_having() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT city, COUNT(*) AS n FROM users GROUP BY city HAVING COUNT(*) > 1",
        );
        assert_eq!(out.rows, vec![vec![Value::from("lisbon"), Value::Int(2)]]);
        assert_eq!(out.columns, vec!["city", "n"]);
    }

    #[test]
    fn order_by_desc_and_positional() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT name, age FROM users WHERE age IS NOT NULL ORDER BY age DESC",
        );
        assert_eq!(out.rows[0][0], Value::from("cyn"));
        let out = run(
            &mut db,
            "SELECT name, age FROM users WHERE age IS NOT NULL ORDER BY 2",
        );
        assert_eq!(out.rows[0][0], Value::from("bob"));
    }

    #[test]
    fn limit_offset() {
        let mut db = fixture();
        let out = run(&mut db, "SELECT id FROM users ORDER BY id LIMIT 1, 2");
        assert_eq!(out.rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
    }

    #[test]
    fn union_and_column_count_check() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT name FROM users WHERE id = 1 UNION SELECT city FROM users WHERE id = 2",
        );
        assert_eq!(out.rows.len(), 2);
        // union dedup
        let out = run(
            &mut db,
            "SELECT city FROM users WHERE id = 1 UNION SELECT city FROM users WHERE id = 3",
        );
        assert_eq!(out.rows.len(), 1);
        let err = run_err(
            &mut db,
            "SELECT name, age FROM users UNION SELECT city FROM users",
        );
        assert!(matches!(err, DbError::Semantic(_)));
    }

    #[test]
    fn joins() {
        let mut db = fixture();
        run(
            &mut db,
            "CREATE TABLE pets (id INT PRIMARY KEY AUTO_INCREMENT, owner INT, pname VARCHAR(16))",
        );
        run(
            &mut db,
            "INSERT INTO pets (owner, pname) VALUES (1, 'rex'), (1, 'tom'), (3, 'fly')",
        );
        let out = run(
            &mut db,
            "SELECT u.name, p.pname FROM users u JOIN pets p ON p.owner = u.id ORDER BY p.pname",
        );
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0], vec![Value::from("cyn"), Value::from("fly")]);
        let out = run(
            &mut db,
            "SELECT u.name, p.pname FROM users u LEFT JOIN pets p ON p.owner = u.id \
             WHERE p.pname IS NULL ORDER BY u.name",
        );
        assert_eq!(out.rows.len(), 2); // bob and dan have no pets
    }

    #[test]
    fn subqueries_scalar_in_exists() {
        let mut db = fixture();
        let out = run(&mut db, "SELECT (SELECT MAX(age) FROM users)");
        assert_eq!(out.scalar(), Some(&Value::Int(42)));
        let out = run(
            &mut db,
            "SELECT name FROM users WHERE id IN (SELECT id FROM users WHERE age > 30)",
        );
        assert_eq!(out.rows.len(), 2);
        let out = run(
            &mut db,
            "SELECT name FROM users u WHERE EXISTS \
             (SELECT 1 FROM users v WHERE v.city = u.city AND v.id <> u.id)",
        );
        assert_eq!(out.rows.len(), 2); // the two lisboetas
    }

    #[test]
    fn insert_select_statement() {
        let mut db = fixture();
        run(&mut db, "CREATE TABLE names (n VARCHAR(32))");
        let out = run(
            &mut db,
            "INSERT INTO names (n) SELECT name FROM users WHERE age > 30",
        );
        assert_eq!(out.affected, 2);
    }

    #[test]
    fn insert_defaults_and_auto_increment() {
        let mut db = fixture();
        let out = run(&mut db, "INSERT INTO users (name) VALUES ('eve')");
        assert_eq!(out.last_insert_id, Some(5));
        let out = run(&mut db, "SELECT age FROM users WHERE id = 5");
        assert_eq!(out.scalar(), Some(&Value::Null));
    }

    #[test]
    fn select_without_from() {
        let mut db = Database::new();
        let out = run(&mut db, "SELECT 1 + 1, CONCAT('a', 'b')");
        assert_eq!(out.rows[0], vec![Value::Int(2), Value::from("ab")]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let mut db = Database::new();
        let out = run(&mut db, "SELECT 1 / 0, 5 DIV 0, 5 % 0");
        assert_eq!(out.rows[0], vec![Value::Null, Value::Null, Value::Null]);
    }

    #[test]
    fn three_valued_logic() {
        let mut db = Database::new();
        let out = run(
            &mut db,
            "SELECT NULL AND 0, NULL AND 1, NULL OR 1, NULL OR 0, NOT NULL",
        );
        assert_eq!(
            out.rows[0],
            vec![
                Value::Int(0),
                Value::Null,
                Value::Int(1),
                Value::Null,
                Value::Null
            ]
        );
    }

    #[test]
    fn sleep_side_effect_propagates() {
        let mut db = Database::new();
        let out = run(&mut db, "SELECT SLEEP(3)");
        assert_eq!(out.effects.sleep_seconds, 3.0);
    }

    #[test]
    fn in_list_null_semantics() {
        let mut db = Database::new();
        let out = run(
            &mut db,
            "SELECT 2 IN (1, NULL), 1 IN (1, NULL), 1 NOT IN (2, 3)",
        );
        assert_eq!(out.rows[0], vec![Value::Null, Value::Int(1), Value::Int(1)]);
    }

    #[test]
    fn case_expressions() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT name, CASE WHEN age >= 40 THEN 'old' WHEN age >= 30 THEN 'mid' ELSE 'young' END \
             FROM users WHERE age IS NOT NULL ORDER BY id",
        );
        assert_eq!(out.rows[0][1], Value::from("mid"));
        assert_eq!(out.rows[1][1], Value::from("young"));
        assert_eq!(out.rows[2][1], Value::from("old"));
    }

    #[test]
    fn distinct() {
        let mut db = fixture();
        let out = run(&mut db, "SELECT DISTINCT city FROM users");
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn information_schema_is_queryable() {
        let mut db = fixture();
        let out = run(
            &mut db,
            "SELECT table_name, table_rows FROM information_schema.tables",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::from("users"));
        assert_eq!(out.rows[0][1], Value::Int(4));
        let out = run(
            &mut db,
            "SELECT column_name FROM information_schema.columns \
             WHERE table_name = 'users' ORDER BY ordinal_position",
        );
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[0][0], Value::from("id"));
        // Writes to the virtual views are refused (the INSERT grammar does
        // not even accept a qualified target; MySQL denies them too).
        assert!(parse("INSERT INTO information_schema.tables (x) VALUES ('x')").is_err());
    }

    #[test]
    fn validate_catches_unknown_tables() {
        let db = fixture();
        let parsed = parse("SELECT * FROM nope").unwrap();
        assert!(matches!(
            validate(&db, &parsed.statements[0]),
            Err(DbError::UnknownTable(_))
        ));
        let parsed = parse("SELECT * FROM users UNION SELECT * FROM ghosts").unwrap();
        assert!(validate(&db, &parsed.statements[0]).is_err());
        let parsed = parse("DROP TABLE IF EXISTS ghosts").unwrap();
        assert!(validate(&db, &parsed.statements[0]).is_ok());
    }

    #[test]
    fn unknown_column_errors() {
        let mut db = fixture();
        assert!(matches!(
            run_err(&mut db, "SELECT ghost FROM users"),
            DbError::UnknownColumn(_)
        ));
    }

    #[test]
    fn group_concat_exfiltration_shape() {
        // The classic one-row exfiltration aggregate used by injections.
        let mut db = fixture();
        let out = run(&mut db, "SELECT GROUP_CONCAT(name) FROM users");
        let Value::Str(s) = out.scalar().unwrap() else {
            panic!()
        };
        assert!(s.contains("ann") && s.contains("dan"));
    }
}
