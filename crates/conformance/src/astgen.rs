//! Seeded random SQL statement generator for the parse → display → parse
//! roundtrip property, plus a fixed corpus that deterministically covers
//! every AST node kind (`crates/sql::ast`) — so coverage never depends on
//! RNG luck.

use crate::rng::ConformanceRng;

const TABLES: [&str; 3] = ["t", "u", "v"];
const COLUMNS: [&str; 5] = ["a", "b", "c", "x", "y"];
const FUNCTIONS: [&str; 5] = ["UPPER", "LOWER", "LENGTH", "ABS", "CONCAT"];
const BINARY_OPS: [&str; 23] = [
    "AND", "OR", "XOR", "=", "<=>", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "DIV", "%",
    "LIKE", "NOT LIKE", "&", "|", "^", "<<", ">>",
];

fn table(rng: &mut ConformanceRng) -> &'static str {
    TABLES[rng.below(TABLES.len() as u64) as usize]
}

fn column(rng: &mut ConformanceRng) -> &'static str {
    COLUMNS[rng.below(COLUMNS.len() as u64) as usize]
}

fn literal(rng: &mut ConformanceRng) -> String {
    match rng.below(4) {
        0 => rng.below(1000).to_string(),
        // Fractional part keeps the printed float a float on reparse.
        1 => format!("{}.5", rng.below(100)),
        2 => format!("'{}'", rng.benign_word(0, 8)),
        _ => "NULL".to_string(),
    }
}

fn atom(rng: &mut ConformanceRng) -> String {
    match rng.below(4) {
        0 => literal(rng),
        1 => column(rng).to_string(),
        2 => format!("{}.{}", table(rng), column(rng)),
        _ => "?".to_string(),
    }
}

/// A random expression of bounded depth, written in the fully-parenthesized
/// form the printer emits.
fn expr(rng: &mut ConformanceRng, depth: u32) -> String {
    if depth == 0 {
        return atom(rng);
    }
    match rng.below(11) {
        0 => atom(rng),
        1 => {
            let op = *rng.pick(&["-", "~", "NOT "]);
            format!("({op}({}))", expr(rng, depth - 1))
        }
        2 => {
            let op = *rng.pick(&BINARY_OPS);
            format!("({} {op} {})", expr(rng, depth - 1), expr(rng, depth - 1))
        }
        3 => {
            let name = *rng.pick(&FUNCTIONS);
            if name == "CONCAT" {
                format!("CONCAT({}, {})", expr(rng, depth - 1), expr(rng, depth - 1))
            } else {
                format!("{name}({})", expr(rng, depth - 1))
            }
        }
        4 => format!(
            "({} IS {}NULL)",
            expr(rng, depth - 1),
            if rng.coin() { "NOT " } else { "" }
        ),
        5 => format!(
            "({} {}IN ({}, {}))",
            expr(rng, depth - 1),
            if rng.coin() { "NOT " } else { "" },
            literal(rng),
            literal(rng)
        ),
        6 => format!(
            "({} {}IN ({}))",
            column(rng),
            if rng.coin() { "NOT " } else { "" },
            subselect(rng)
        ),
        7 => format!(
            "({} {}BETWEEN {} AND {})",
            expr(rng, depth - 1),
            if rng.coin() { "NOT " } else { "" },
            literal(rng),
            literal(rng)
        ),
        8 => format!("({})", subselect(rng)),
        9 => format!(
            "({}EXISTS ({}))",
            if rng.coin() { "NOT " } else { "" },
            subselect(rng)
        ),
        _ => {
            let operand = if rng.coin() {
                format!(" {}", column(rng))
            } else {
                String::new()
            };
            let else_branch = if rng.coin() {
                format!(" ELSE {}", literal(rng))
            } else {
                String::new()
            };
            format!(
                "CASE{operand} WHEN {} THEN {}{else_branch} END",
                expr(rng, depth - 1),
                literal(rng)
            )
        }
    }
}

/// A single-table subselect (kept flat so generated queries stay small).
fn subselect(rng: &mut ConformanceRng) -> String {
    format!(
        "SELECT {} FROM {} WHERE ({} = {})",
        column(rng),
        table(rng),
        column(rng),
        literal(rng)
    )
}

fn select(rng: &mut ConformanceRng, depth: u32) -> String {
    let mut sql = "SELECT ".to_string();
    if rng.chance(25) {
        sql.push_str("DISTINCT ");
    }
    let items = rng.range(1, 4);
    for i in 0..items {
        if i > 0 {
            sql.push_str(", ");
        }
        match rng.below(4) {
            0 => sql.push('*'),
            1 => sql.push_str(&format!("{}.*", table(rng))),
            2 => sql.push_str(&format!("{} AS al{}", expr(rng, depth), rng.below(3))),
            _ => sql.push_str(&expr(rng, depth)),
        }
    }
    sql.push_str(&format!(" FROM {}", table(rng)));
    if rng.coin() {
        sql.push_str(&format!(" AS tb{}", rng.below(3)));
    }
    if rng.chance(40) {
        let kind = if rng.coin() { "JOIN" } else { "LEFT JOIN" };
        sql.push_str(&format!(
            " {kind} {} ON ({} = {})",
            table(rng),
            column(rng),
            column(rng)
        ));
    }
    if rng.chance(70) {
        sql.push_str(&format!(" WHERE {}", expr(rng, depth)));
    }
    if rng.chance(30) {
        sql.push_str(&format!(" GROUP BY {}", column(rng)));
        if rng.coin() {
            sql.push_str(&format!(" HAVING (COUNT(*) > {})", rng.below(10)));
        }
    }
    if rng.chance(40) {
        sql.push_str(&format!(
            " ORDER BY {}{}",
            column(rng),
            if rng.coin() { " DESC" } else { "" }
        ));
    }
    if rng.chance(40) {
        if rng.coin() {
            sql.push_str(&format!(" LIMIT {}, {}", rng.range(1, 5), rng.range(1, 20)));
        } else {
            sql.push_str(&format!(" LIMIT {}", rng.range(1, 20)));
        }
    }
    if depth > 0 && rng.chance(25) {
        let all = if rng.coin() { "ALL " } else { "" };
        sql.push_str(&format!(" UNION {all}{}", select(rng, depth - 1)));
    }
    sql
}

fn insert(rng: &mut ConformanceRng, depth: u32) -> String {
    let cols = rng.range(1, 4) as usize;
    let names: Vec<&str> = COLUMNS[..cols].to_vec();
    if rng.coin() {
        let rows = rng.range(1, 3);
        let mut values = Vec::new();
        for _ in 0..rows {
            let row: Vec<String> = (0..cols).map(|_| literal(rng)).collect();
            values.push(format!("({})", row.join(", ")));
        }
        format!(
            "INSERT INTO {} ({}) VALUES {}",
            table(rng),
            names.join(", "),
            values.join(", ")
        )
    } else {
        format!(
            "INSERT INTO {} ({}) {}",
            table(rng),
            names.join(", "),
            select(rng, depth)
        )
    }
}

fn update(rng: &mut ConformanceRng, depth: u32) -> String {
    let assigns = rng.range(1, 3);
    let mut sql = format!("UPDATE {} SET ", table(rng));
    for i in 0..assigns {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(&format!("{} = {}", column(rng), expr(rng, depth)));
    }
    if rng.coin() {
        sql.push_str(&format!(" WHERE {}", expr(rng, depth)));
    }
    if rng.chance(30) {
        sql.push_str(&format!(" LIMIT {}", rng.range(1, 5)));
    }
    sql
}

fn delete(rng: &mut ConformanceRng, depth: u32) -> String {
    let mut sql = format!("DELETE FROM {}", table(rng));
    if rng.coin() {
        sql.push_str(&format!(" WHERE {}", expr(rng, depth)));
    }
    if rng.chance(30) {
        sql.push_str(&format!(" LIMIT {}", rng.range(1, 5)));
    }
    sql
}

fn create_table(rng: &mut ConformanceRng) -> String {
    const TYPES: [&str; 6] = ["INT", "BIGINT", "DOUBLE", "VARCHAR(16)", "TEXT", "DATETIME"];
    let mut sql = "CREATE TABLE ".to_string();
    if rng.coin() {
        sql.push_str("IF NOT EXISTS ");
    }
    sql.push_str(&format!("nt{} (", rng.below(3)));
    let cols = rng.range(1, 4);
    for i in 0..cols {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(&format!("c{i} {}", rng.pick(&TYPES)));
        if i == 0 && rng.coin() {
            sql.push_str(" PRIMARY KEY AUTO_INCREMENT");
        } else if rng.coin() {
            sql.push_str(" NOT NULL");
        } else if rng.chance(30) {
            sql.push_str(&format!(" DEFAULT {}", literal(rng)));
        }
    }
    sql.push(')');
    sql
}

/// A random statement: pure function of `seed`, spanning the whole AST.
#[must_use]
pub fn random_statement_sql(seed: u64) -> String {
    let mut rng = ConformanceRng::new(seed);
    let depth = 2;
    match rng.below(7) {
        0 | 1 => select(&mut rng, depth),
        2 => insert(&mut rng, depth),
        3 => update(&mut rng, depth),
        4 => delete(&mut rng, depth),
        5 => create_table(&mut rng),
        _ => format!(
            "DROP TABLE {}{}",
            if rng.coin() { "IF EXISTS " } else { "" },
            table(&mut rng)
        ),
    }
}

/// Fixed statements that jointly cover **every** AST node kind: all six
/// statements, all select-item forms, both join kinds, every binary and
/// unary operator, every literal kind, every column type and flag, and
/// every composite expression (IS NULL, IN list/select, BETWEEN, subquery,
/// EXISTS, CASE with and without operand).
#[must_use]
pub fn ast_coverage_corpus() -> Vec<&'static str> {
    vec![
        // Statements, select items, joins, order/group/having/limit, union.
        "SELECT * FROM t",
        "SELECT t.* FROM t",
        "SELECT DISTINCT a, b AS x FROM t AS tt ORDER BY a DESC, b LIMIT 3, 4",
        "SELECT a FROM t JOIN u ON (t.a = u.b) LEFT JOIN v ON (v.x = 1)",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING (COUNT(*) > 1) LIMIT 5",
        "SELECT a FROM t UNION SELECT b FROM u",
        "SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v",
        // Literals: int, float (fractional and integral-valued), string
        // (with escaped quote), NULL; param.
        "SELECT 1, 2.5, 2.0, 'it''s', NULL, ? FROM t",
        // Unary operators.
        "SELECT -(a), ~(b), NOT (c) FROM t",
        // Every binary operator.
        "SELECT (a AND b), (a OR b), (a XOR b) FROM t",
        "SELECT (a = b), (a <=> b), (a <> b), (a < b), (a <= b), (a > b), (a >= b) FROM t",
        "SELECT (a + b), (a - b), (a * b), (a / b), (a DIV b), (a % b) FROM t",
        "SELECT (a & b), (a | b), (a ^ b), (a << b), (a >> b) FROM t",
        "SELECT (a LIKE 'x%'), (a NOT LIKE '%y') FROM t",
        // Functions, qualified and bare columns.
        "SELECT CONCAT(t.a, 'x'), LENGTH(b), UPPER(c) FROM t",
        // IS NULL / IN / BETWEEN / subquery / EXISTS / CASE.
        "SELECT a FROM t WHERE (a IS NULL) AND (b IS NOT NULL)",
        "SELECT a FROM t WHERE (a IN (1, 2)) AND (b NOT IN ('x', 'y'))",
        "SELECT a FROM t WHERE (a IN (SELECT b FROM u)) AND (c NOT IN (SELECT x FROM v))",
        "SELECT a FROM t WHERE (a BETWEEN 1 AND 2) AND (b NOT BETWEEN 'l' AND 'h')",
        "SELECT (SELECT x FROM u WHERE (u.a = t.a)) FROM t",
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) AND NOT EXISTS (SELECT 2 FROM v)",
        "SELECT CASE WHEN (a = 1) THEN 'one' ELSE 'other' END FROM t",
        "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t",
        // INSERT: values (multi-row) and select sources.
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
        "INSERT INTO t (a) SELECT b FROM u WHERE (b > 1)",
        // UPDATE / DELETE with limits.
        "UPDATE t SET a = 1, b = CONCAT(b, 'x') WHERE (a IN (1, 2)) LIMIT 1",
        "DELETE FROM t WHERE (a BETWEEN 1 AND 9) LIMIT 2",
        // CREATE TABLE: every column type and flag; DROP TABLE forms.
        "CREATE TABLE nt (id INT PRIMARY KEY AUTO_INCREMENT, big BIGINT NOT NULL, \
         d DOUBLE, s VARCHAR(16) DEFAULT 'x', tx TEXT, ts DATETIME)",
        "CREATE TABLE IF NOT EXISTS nt (id INT)",
        "DROP TABLE nt",
        "DROP TABLE IF EXISTS nt",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_statements_are_deterministic() {
        for seed in 0..50 {
            assert_eq!(random_statement_sql(seed), random_statement_sql(seed));
        }
    }

    #[test]
    fn generated_statements_parse() {
        for seed in 0..300 {
            let sql = random_statement_sql(seed);
            septic_sql::parse(&sql).unwrap_or_else(|e| panic!("seed {seed}: `{sql}`: {e}"));
        }
    }

    #[test]
    fn coverage_corpus_parses() {
        for sql in ast_coverage_corpus() {
            septic_sql::parse(sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
        }
    }
}
