//! Golden-file plumbing for the detection matrix.
//!
//! The matrix lives at `tests/golden/detection_matrix.json` in the repo
//! root and is compared byte-for-byte. To accept intentional verdict
//! changes, regenerate with:
//!
//! ```text
//! SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden
//! ```
//!
//! and commit the diff. CI regenerates and fails on any difference, so a
//! PR can only change a detection verdict together with a reviewed golden
//! update.

use std::path::PathBuf;

/// Repo-relative location of the golden matrix.
#[must_use]
pub fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/detection_matrix.json")
}

/// True when the run should rewrite the golden file instead of comparing
/// (`SEPTIC_CONFORMANCE_REGEN` set to anything but `0`).
#[must_use]
pub fn regen_requested() -> bool {
    std::env::var_os("SEPTIC_CONFORMANCE_REGEN").is_some_and(|v| v != "0")
}

/// A compact line diff for mismatch reports: the first `max` differing
/// lines with their 1-based line numbers, or `None` when equal.
#[must_use]
pub fn diff_report(expected: &str, actual: &str, max: usize) -> Option<String> {
    if expected == actual {
        return None;
    }
    let mut out = String::new();
    let mut shown = 0;
    let mut expected_lines = expected.lines();
    let mut actual_lines = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (expected_lines.next(), actual_lines.next()) {
            (None, None) => break,
            (e, a) => {
                if e != a {
                    out.push_str(&format!(
                        "line {line}:\n  golden: {}\n  actual: {}\n",
                        e.unwrap_or("<eof>"),
                        a.unwrap_or("<eof>")
                    ));
                    shown += 1;
                    if shown >= max {
                        out.push_str("  … (further differences elided)\n");
                        break;
                    }
                }
            }
        }
    }
    if out.is_empty() {
        // Same lines, different bytes (e.g. trailing newline).
        out.push_str("files differ only in trailing bytes/newlines\n");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_have_no_diff() {
        assert_eq!(diff_report("a\nb\n", "a\nb\n", 5), None);
    }

    #[test]
    fn diff_names_the_first_divergent_line() {
        let d = diff_report("a\nb\nc\n", "a\nX\nc\n", 5).expect("differs");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("golden: b"), "{d}");
        assert!(d.contains("actual: X"), "{d}");
    }

    #[test]
    fn diff_is_capped() {
        let d = diff_report("a\nb\nc\n", "x\ny\nz\n", 2).expect("differs");
        assert!(d.contains("elided"), "{d}");
    }

    #[test]
    fn trailing_newline_difference_is_reported() {
        let d = diff_report("a\n", "a", 5).expect("differs");
        assert!(d.contains("trailing"), "{d}");
    }
}
