//! Golden-file plumbing for the detection matrix.
//!
//! The matrix lives at `tests/golden/detection_matrix.json` in the repo
//! root and is compared byte-for-byte. To accept intentional verdict
//! changes, regenerate with:
//!
//! ```text
//! SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden
//! ```
//!
//! and commit the diff. CI regenerates and fails on any difference, so a
//! PR can only change a detection verdict together with a reviewed golden
//! update.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::differential::{CaseResult, DetectionMatrix};

/// Repo-relative location of the golden matrix.
#[must_use]
pub fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/detection_matrix.json")
}

/// True when the run should rewrite the golden file instead of comparing
/// (`SEPTIC_CONFORMANCE_REGEN` set to anything but `0`).
#[must_use]
pub fn regen_requested() -> bool {
    std::env::var_os("SEPTIC_CONFORMANCE_REGEN").is_some_and(|v| v != "0")
}

/// A compact line diff for mismatch reports: the first `max` differing
/// lines with their 1-based line numbers, or `None` when equal.
#[must_use]
pub fn diff_report(expected: &str, actual: &str, max: usize) -> Option<String> {
    if expected == actual {
        return None;
    }
    let mut out = String::new();
    let mut shown = 0;
    let mut expected_lines = expected.lines();
    let mut actual_lines = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (expected_lines.next(), actual_lines.next()) {
            (None, None) => break,
            (e, a) => {
                if e != a {
                    out.push_str(&format!(
                        "line {line}:\n  golden: {}\n  actual: {}\n",
                        e.unwrap_or("<eof>"),
                        a.unwrap_or("<eof>")
                    ));
                    shown += 1;
                    if shown >= max {
                        out.push_str("  … (further differences elided)\n");
                        break;
                    }
                }
            }
        }
    }
    if out.is_empty() {
        // Same lines, different bytes (e.g. trailing newline).
        out.push_str("files differ only in trailing bytes/newlines\n");
    }
    Some(out)
}

/// The per-defense verdict columns of a case row, in matrix order.
fn verdict_columns(c: &CaseResult) -> [(&'static str, &str); 5] {
    [
        ("sanitize-only", c.sanitize_only.as_str()),
        ("waf", c.waf.as_str()),
        ("septic-detection", c.septic_detection.as_str()),
        ("septic-prevention", c.septic_prevention.as_str()),
        ("septic-structural", c.septic_structural.as_str()),
    ]
}

/// A readable, per-case diff between two parsed matrices: each drifted
/// case is reported with its construct family and exactly the defense
/// columns whose verdicts changed, plus added/removed case ids. Returns
/// `None` when the matrices are equal. Capped at `max` case entries.
#[must_use]
pub fn matrix_diff_report(
    golden: &DetectionMatrix,
    actual: &DetectionMatrix,
    max: usize,
) -> Option<String> {
    if golden == actual {
        return None;
    }
    let mut out = String::new();
    if golden.version != actual.version {
        let _ = writeln!(
            out,
            "version: golden {:?} -> actual {:?}",
            golden.version, actual.version
        );
    }
    if golden.seed != actual.seed {
        let _ = writeln!(
            out,
            "seed: golden {} -> actual {}",
            golden.seed, actual.seed
        );
    }
    let mut shown = 0;
    for a in &actual.cases {
        if shown >= max {
            let _ = writeln!(out, "… (further case differences elided)");
            break;
        }
        match golden.cases.iter().find(|g| g.id == a.id) {
            None => {
                let _ = writeln!(out, "+ {} [{} / {}] (new case)", a.id, a.construct, a.class);
                shown += 1;
            }
            Some(g) if g != a => {
                let _ = writeln!(out, "~ {} [{} / {}]", a.id, a.construct, a.class);
                if g.harmful != a.harmful {
                    let _ = writeln!(
                        out,
                        "    harmful: golden {} -> actual {}",
                        g.harmful, a.harmful
                    );
                }
                if g.payload != a.payload {
                    let _ = writeln!(
                        out,
                        "    payload: golden {:?} -> actual {:?}",
                        g.payload, a.payload
                    );
                }
                for ((col, gv), (_, av)) in verdict_columns(g).iter().zip(verdict_columns(a)) {
                    if *gv != av {
                        let _ = writeln!(out, "    {col}: golden {gv} -> actual {av}");
                    }
                }
                shown += 1;
            }
            _ => {}
        }
    }
    for g in &golden.cases {
        if !actual.cases.iter().any(|a| a.id == g.id) {
            let _ = writeln!(out, "- {} [{} / {}] (removed)", g.id, g.construct, g.class);
        }
    }
    if out.is_empty() {
        // Cases agree: the drift is in the derived summary or column list.
        out.push_str("per-case rows agree; summary/defense metadata drifted\n");
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::{build_matrix, MATRIX_SEED};

    #[test]
    fn equal_strings_have_no_diff() {
        assert_eq!(diff_report("a\nb\n", "a\nb\n", 5), None);
    }

    #[test]
    fn diff_names_the_first_divergent_line() {
        let d = diff_report("a\nb\nc\n", "a\nX\nc\n", 5).expect("differs");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("golden: b"), "{d}");
        assert!(d.contains("actual: X"), "{d}");
    }

    #[test]
    fn diff_is_capped() {
        let d = diff_report("a\nb\nc\n", "x\ny\nz\n", 2).expect("differs");
        assert!(d.contains("elided"), "{d}");
    }

    #[test]
    fn trailing_newline_difference_is_reported() {
        let d = diff_report("a\n", "a", 5).expect("differs");
        assert!(d.contains("trailing"), "{d}");
    }

    #[test]
    fn matrix_diff_names_case_construct_and_defense_column() {
        let golden = build_matrix(MATRIX_SEED);
        assert_eq!(matrix_diff_report(&golden, &golden, 10), None);

        let mut drifted = golden.clone();
        let case = drifted
            .cases
            .iter_mut()
            .find(|c| c.construct == "join" && c.septic_prevention == "blocked")
            .expect("blocked join case");
        let id = case.id.clone();
        case.septic_prevention = "passed".to_string();
        let d = matrix_diff_report(&golden, &drifted, 10).expect("differs");
        assert!(d.contains(&format!("~ {id} [join /")), "{d}");
        assert!(
            d.contains("septic-prevention: golden blocked -> actual passed"),
            "{d}"
        );
        assert!(
            !d.contains("sanitize-only:"),
            "unchanged columns are silent: {d}"
        );
    }

    #[test]
    fn matrix_diff_reports_added_and_removed_cases() {
        let golden = build_matrix(MATRIX_SEED);
        let mut actual = golden.clone();
        let removed = actual.cases.remove(0);
        let d = matrix_diff_report(&golden, &actual, 10).expect("differs");
        assert!(d.contains(&format!("- {} [", removed.id)), "{d}");

        let mut grown = golden.clone();
        let mut extra = grown.cases[0].clone();
        extra.id = "synthetic/extra-0".to_string();
        grown.cases.push(extra);
        let d = matrix_diff_report(&golden, &grown, 10).expect("differs");
        assert!(d.contains("+ synthetic/extra-0 ["), "{d}");
    }
}
