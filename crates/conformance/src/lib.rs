//! Conformance lab for the SEPTIC reproduction.
//!
//! Four cooperating pieces, all seeded and fully deterministic:
//!
//! - [`grammar`] — a grammar-driven generator that produces benign query
//!   templates and, per taxonomy class from `crates/attacks`, derived
//!   attack variants (tautology, union, piggyback, comment mimicry,
//!   encoding tricks).
//! - [`metamorphic`] — mutation operators and oracles asserting that
//!   semantics-preserving rewrites (homoglyph quoting, inline comments,
//!   whitespace and case churn) never change a benign query's learned
//!   query model, and that query-structure extraction is a fixpoint under
//!   parse → display → parse.
//! - [`differential`] — a driver that runs every generated case through
//!   sanitization-only, the WAF, and SEPTIC in detection, prevention, and
//!   structural-only modes, producing the golden detection matrix at
//!   `tests/golden/detection_matrix.json`.
//! - [`fuzz`] — a deterministic byte-level fuzz harness for the SQL
//!   front end, with a minimizing shrinker, run from `cargo test`.
//!
//! [`astgen`] and [`rng`] are shared infrastructure: an every-node-kind
//! SQL statement generator for roundtrip properties, and the xorshift RNG
//! everything derives its randomness from.

pub mod astgen;
pub mod differential;
pub mod fuzz;
pub mod golden;
pub mod grammar;
pub mod metamorphic;
pub mod rng;
