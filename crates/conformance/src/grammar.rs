//! Seeded, grammar-driven case generation.
//!
//! A small web-app grammar: query **templates** over a fixed schema, each
//! with one user-controlled slot (quoted string or unquoted numeric — the
//! two splice contexts of the paper's vulnerable PHP apps). From every
//! template the generator derives:
//!
//! * **benign** instances (random safe literals) — the training corpus and
//!   the false-positive probe;
//! * **attack** variants per taxonomy class ([`AttackClass`]): tautologies,
//!   UNION pulls, piggybacked statements, comment/syntax mimicry, and
//!   encoding tricks (homoglyph quotes, version comments, fullwidth
//!   comment starters, hex literals).
//!
//! The application model is faithful to the paper's setup: quoted slots
//! are sanitized with `mysql_real_escape_string` before splicing (so
//! classic ASCII SQLI is *neutralized* and only semantic-mismatch classes
//! get through), numeric slots are spliced verbatim (the classic PHP bug —
//! escaping without quoting protects nothing).

use septic_attacks::AttackClass;
use septic_webapp::php::mysql_real_escape_string;

use crate::rng::ConformanceRng;

/// Splice context of a template's user slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Inside a `'…'` literal; the app escapes the payload first.
    Quoted,
    /// Unquoted numeric position; the app splices the payload verbatim.
    Numeric,
}

/// SQL construct family a template exercises — the structural surface the
/// detector must distinguish. Every family must appear in the golden
/// matrix (shape assertion in the golden tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construct {
    /// Single-table SELECT/INSERT/UPDATE/DELETE.
    Basic,
    /// Multi-table query with an explicit JOIN … ON clause.
    Join,
    /// GROUP BY with aggregates and a HAVING filter.
    GroupBy,
    /// Scalar/IN/EXISTS subquery in the WHERE clause.
    Subquery,
}

impl Construct {
    /// Stable kebab-case label, used in the matrix `construct` column.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Construct::Basic => "basic",
            Construct::Join => "join",
            Construct::GroupBy => "group-by",
            Construct::Subquery => "subquery",
        }
    }

    /// All construct families, in matrix order.
    #[must_use]
    pub fn all() -> [Construct; 4] {
        [
            Construct::Basic,
            Construct::Join,
            Construct::GroupBy,
            Construct::Subquery,
        ]
    }
}

/// One vulnerable program point: a query with a single user slot.
#[derive(Debug, Clone, Copy)]
pub struct Template {
    /// Stable name, used in case ids and the golden matrix.
    pub name: &'static str,
    /// Query text before the slot (includes the opening quote for
    /// [`SlotKind::Quoted`] slots and the `/* qid:… */` program-point id).
    pub prefix: &'static str,
    /// Query text after the slot (closing quote for quoted slots).
    pub suffix: &'static str,
    /// Splice context.
    pub slot: SlotKind,
    /// Construct family the template exercises.
    pub construct: Construct,
}

impl Template {
    /// Builds the SQL the application would send for `payload`, applying
    /// the application-side sanitization of the slot kind.
    #[must_use]
    pub fn build(&self, payload: &str) -> String {
        let spliced = match self.slot {
            SlotKind::Quoted => mysql_real_escape_string(payload),
            SlotKind::Numeric => payload.to_string(),
        };
        format!("{}{}{}", self.prefix, spliced, self.suffix)
    }

    /// A random benign payload for the slot.
    pub fn benign_payload(&self, rng: &mut ConformanceRng) -> String {
        match self.slot {
            SlotKind::Quoted => rng.benign_word(1, 10),
            SlotKind::Numeric => rng.below(5000).to_string(),
        }
    }
}

/// The fixed template set. Order is part of the golden-matrix contract.
#[must_use]
pub fn templates() -> &'static [Template] {
    &[
        Template {
            name: "tickets-lookup",
            prefix: "/* qid:conf-tickets */ SELECT * FROM tickets WHERE reservID = '",
            suffix: "' AND creditCard = 1234",
            slot: SlotKind::Quoted,
            construct: Construct::Basic,
        },
        Template {
            name: "login",
            prefix: "/* qid:conf-login */ SELECT id FROM users WHERE username = '",
            suffix: "' AND password = 'secret1'",
            slot: SlotKind::Quoted,
            construct: Construct::Basic,
        },
        Template {
            name: "note-update",
            prefix: "/* qid:conf-update */ UPDATE tickets SET note = '",
            suffix: "' WHERE reservID = 'ID34FG'",
            slot: SlotKind::Quoted,
            construct: Construct::Basic,
        },
        Template {
            name: "like-search",
            prefix: "/* qid:conf-like */ SELECT username FROM users WHERE username LIKE '",
            suffix: "%'",
            slot: SlotKind::Quoted,
            construct: Construct::Basic,
        },
        Template {
            name: "reading-insert",
            prefix: "/* qid:conf-insert */ INSERT INTO readings (device, watts, day) VALUES ('",
            suffix: "', 5, 1)",
            slot: SlotKind::Quoted,
            construct: Construct::Basic,
        },
        Template {
            name: "watts-filter",
            prefix: "/* qid:conf-watts */ SELECT device, watts FROM readings WHERE day = ",
            suffix: " AND watts > 10",
            slot: SlotKind::Numeric,
            construct: Construct::Basic,
        },
        Template {
            name: "purge-day",
            prefix: "/* qid:conf-purge */ DELETE FROM readings WHERE day < ",
            suffix: "",
            slot: SlotKind::Numeric,
            construct: Construct::Basic,
        },
        Template {
            name: "device-join",
            prefix: "/* qid:conf-join */ SELECT r.device, d.owner FROM readings r \
                     JOIN devices d ON r.device = d.name WHERE d.owner = '",
            suffix: "'",
            slot: SlotKind::Quoted,
            construct: Construct::Join,
        },
        Template {
            name: "fleet-usage",
            prefix: "/* qid:conf-fleet */ SELECT d.owner, r.watts FROM devices d \
                     LEFT JOIN readings r ON d.name = r.device WHERE r.watts > ",
            suffix: "",
            slot: SlotKind::Numeric,
            construct: Construct::Join,
        },
        Template {
            name: "daily-report",
            prefix: "/* qid:conf-report */ SELECT device, COUNT(*) AS cnt, SUM(watts) AS total \
                     FROM readings GROUP BY device HAVING SUM(watts) > ",
            suffix: "",
            slot: SlotKind::Numeric,
            construct: Construct::GroupBy,
        },
        Template {
            name: "device-audit",
            prefix: "/* qid:conf-audit */ SELECT device, watts FROM readings WHERE device IN \
                     (SELECT name FROM devices WHERE owner = '",
            suffix: "')",
            slot: SlotKind::Quoted,
            construct: Construct::Subquery,
        },
    ]
}

/// Quote homoglyphs the connection charset folds to `'` — the characters
/// `mysql_real_escape_string` passes untouched.
const QUOTE_HOMOGLYPHS: [char; 3] = ['\u{02BC}', '\u{2019}', '\u{FF07}'];

/// Comment tails that swallow the template suffix after a breakout.
const COMMENT_TAILS: [&str; 3] = ["-- ", "#", " -- "];

/// Spellings of `OR` (keyword case is free in MySQL; WAF regexes that
/// anchor on a fixed case miss the variants).
const OR_SPELLINGS: [&str; 4] = ["OR", "or", "Or", "oR"];

fn homoglyph(rng: &mut ConformanceRng) -> char {
    *rng.pick(&QUOTE_HOMOGLYPHS)
}

fn tail(rng: &mut ConformanceRng) -> &'static str {
    COMMENT_TAILS[rng.below(COMMENT_TAILS.len() as u64) as usize]
}

fn or_kw(rng: &mut ConformanceRng) -> &'static str {
    OR_SPELLINGS[rng.below(OR_SPELLINGS.len() as u64) as usize]
}

/// One generated conformance case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Stable id, e.g. `login/homoglyph-tautology-1`.
    pub id: String,
    /// Template name.
    pub template: &'static str,
    /// Construct family of the template (matrix `construct` column).
    pub construct: Construct,
    /// `None` for benign instances.
    pub class: Option<AttackClass>,
    /// Taxonomy variant: `benign`, `tautology`, `union`, `piggyback`,
    /// `comment-mimicry`, `mimicry`, `encoding`, `stored-xss`,
    /// `aggregate-alias`, `aggregate-swap`.
    pub variant: &'static str,
    /// The raw user payload, before application-side sanitization.
    pub payload: String,
    /// The SQL the application sends (payload sanitized and spliced).
    pub sql: String,
}

/// Stable kebab-case key for the matrix `class` column.
#[must_use]
pub fn class_key(class: Option<AttackClass>) -> &'static str {
    match class {
        None => "benign",
        Some(AttackClass::ClassicSqli) => "classic-sqli",
        Some(AttackClass::NumericContext) => "numeric-context",
        Some(AttackClass::HomoglyphFirstOrder) => "homoglyph-first-order",
        Some(AttackClass::SyntaxMimicry) => "syntax-mimicry",
        Some(AttackClass::SecondOrder) => "second-order",
        Some(AttackClass::Piggyback) => "piggyback",
        Some(AttackClass::SubqueryUnion) => "subquery-union",
        Some(AttackClass::AggregateMimicry) => "aggregate-mimicry",
        Some(AttackClass::JoinPiggyback) => "join-piggyback",
        Some(AttackClass::StoredXss) => "stored-xss",
        Some(AttackClass::Rfi) => "rfi",
        Some(AttackClass::Lfi) => "lfi",
        Some(AttackClass::Osci) => "osci",
        Some(AttackClass::Rce) => "rce",
    }
}

/// Attack payloads derived for one template: `(class, variant, payload)`.
/// Every payload here is *designed to survive the application-side
/// sanitization* of the slot (except the classic-SQLI contrast cases,
/// which exist to show sanitization working).
fn attack_specs(
    t: &Template,
    rng: &mut ConformanceRng,
) -> Vec<(AttackClass, &'static str, String)> {
    let mut specs = Vec::new();
    match t.construct {
        Construct::Basic => basic_specs(t, rng, &mut specs),
        Construct::Join => join_specs(t, rng, &mut specs),
        Construct::GroupBy => group_by_specs(rng, &mut specs),
        Construct::Subquery => subquery_specs(rng, &mut specs),
    }
    specs
}

/// The original single-table attack families, keyed on the slot kind.
fn basic_specs(
    t: &Template,
    rng: &mut ConformanceRng,
    specs: &mut Vec<(AttackClass, &'static str, String)>,
) {
    match t.slot {
        SlotKind::Quoted => {
            // Classic ASCII tautology: neutralized by escaping, shown for
            // contrast (and as the WAF's bread and butter).
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::ClassicSqli,
                "tautology",
                format!("{w}' {} {n}={n}-- ", or_kw(rng)),
            ));
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::ClassicSqli,
                "tautology",
                format!("{w}' {} 'a'='a", or_kw(rng)),
            ));
            // Homoglyph breakout tautology: the escape function does not
            // recognise the quote, the connection charset folds it.
            for _ in 0..2 {
                let w = rng.benign_word(1, 6);
                let n = rng.range(1, 10);
                specs.push((
                    AttackClass::HomoglyphFirstOrder,
                    "tautology",
                    format!(
                        "{w}{} {} {n} = {n}{}",
                        homoglyph(rng),
                        or_kw(rng),
                        tail(rng)
                    ),
                ));
            }
            // Homoglyph UNION pull, select-list arity matched to the
            // template so the query would actually execute.
            if let Some(cols) = union_columns(t.name) {
                for _ in 0..2 {
                    let w = rng.benign_word(1, 6);
                    specs.push((
                        AttackClass::HomoglyphFirstOrder,
                        "union",
                        format!(
                            "{w}{} UNION SELECT {cols} FROM users{}",
                            homoglyph(rng),
                            tail(rng)
                        ),
                    ));
                }
            }
            // Encoding tricks: version comment around the operator, and a
            // fullwidth `＃` (folds to `#`) hiding the suffix.
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::HomoglyphFirstOrder,
                "encoding",
                format!(
                    "{w}{} /*!{} */ {n}={n}{}",
                    homoglyph(rng),
                    or_kw(rng),
                    tail(rng)
                ),
            ));
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::HomoglyphFirstOrder,
                "encoding",
                format!("{w}{} {} {n}={n}\u{FF03}", homoglyph(rng), or_kw(rng)),
            ));
            // Syntax mimicry (Figure 4): reproduces the learned arity, only
            // a node type differs — the tickets template has the right
            // shape for it.
            if t.name == "tickets-lookup" {
                for _ in 0..2 {
                    let w = rng.benign_word(1, 6);
                    let n = rng.range(1, 10);
                    specs.push((
                        AttackClass::SyntaxMimicry,
                        "comment-mimicry",
                        format!("{w}{} AND {n} = {n}{}", homoglyph(rng), tail(rng)),
                    ));
                }
            }
            // Piggyback through the homoglyph breakout.
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::Piggyback,
                "piggyback",
                format!("{w}{}; DROP TABLE users{}", homoglyph(rng), tail(rng)),
            ));
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::Piggyback,
                "piggyback",
                format!("{w}{}; DELETE FROM tickets{}", homoglyph(rng), tail(rng)),
            ));
            // Stored XSS rides the INSERT template: structurally clean SQL,
            // the payload is the attack.
            if t.name == "reading-insert" {
                let n = rng.range(1, 100);
                specs.push((
                    AttackClass::StoredXss,
                    "stored-xss",
                    format!("<script>alert({n})</script>"),
                ));
                specs.push((
                    AttackClass::StoredXss,
                    "stored-xss",
                    "<img src=x onerror=alert(1)>".to_string(),
                ));
            }
        }
        SlotKind::Numeric => {
            // Numeric-context tautology: no quote needed at all.
            for _ in 0..2 {
                let n = rng.below(100);
                let m = rng.range(1, 10);
                specs.push((
                    AttackClass::NumericContext,
                    "tautology",
                    format!("{n} {} {m} = {m}", or_kw(rng)),
                ));
            }
            // UNION pull (only where the outer select has a list to match).
            if let Some(cols) = union_columns(t.name) {
                for _ in 0..2 {
                    let n = rng.below(100);
                    specs.push((
                        AttackClass::NumericContext,
                        "union",
                        format!("{n} UNION SELECT {cols} FROM users"),
                    ));
                }
            }
            // Comment mimicry: block comments instead of whitespace dodge
            // space-anchored WAF regexes; the DBMS strips them.
            let n = rng.below(100);
            let m = rng.range(1, 10);
            specs.push((
                AttackClass::NumericContext,
                "comment-mimicry",
                format!("{n}/**/{}/**/{m}={m}", or_kw(rng)),
            ));
            // Encoding trick: hex literal keeps the tautology digit-free.
            let m = rng.range(1, 10);
            specs.push((
                AttackClass::NumericContext,
                "encoding",
                format!("0x{m:02x} {} 0x{m:02x} = 0x{m:02x}", or_kw(rng)),
            ));
            // Syntax mimicry: a column reference has the arity of the
            // learned integer literal but a different node type.
            specs.push((AttackClass::SyntaxMimicry, "mimicry", "watts".to_string()));
            specs.push((AttackClass::SyntaxMimicry, "mimicry", "day".to_string()));
            // Piggyback: numeric context needs no breakout at all.
            let n = rng.below(100);
            specs.push((
                AttackClass::Piggyback,
                "piggyback",
                format!("{n}; DROP TABLE readings"),
            ));
        }
    }
}

/// Attack families for the JOIN templates: the learned shape carries
/// `JoinItem` nodes, and the piggyback rides on the multi-table query.
fn join_specs(
    t: &Template,
    rng: &mut ConformanceRng,
    specs: &mut Vec<(AttackClass, &'static str, String)>,
) {
    match t.slot {
        SlotKind::Quoted => {
            // Classic ASCII tautology: neutralized by escaping (contrast).
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::ClassicSqli,
                "tautology",
                format!("{w}' {} {n}={n}-- ", or_kw(rng)),
            ));
            // Homoglyph breakout tautology against the JOIN's WHERE.
            for _ in 0..2 {
                let w = rng.benign_word(1, 6);
                let n = rng.range(1, 10);
                specs.push((
                    AttackClass::HomoglyphFirstOrder,
                    "tautology",
                    format!(
                        "{w}{} {} {n} = {n}{}",
                        homoglyph(rng),
                        or_kw(rng),
                        tail(rng)
                    ),
                ));
            }
            // UNION pull matching the two-column joined select list.
            for _ in 0..2 {
                let w = rng.benign_word(1, 6);
                specs.push((
                    AttackClass::HomoglyphFirstOrder,
                    "union",
                    format!(
                        "{w}{} UNION SELECT username, password FROM users{}",
                        homoglyph(rng),
                        tail(rng)
                    ),
                ));
            }
            // JOIN-clause piggybacking: stacked statement through the
            // homoglyph breakout of the multi-table query.
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::JoinPiggyback,
                "piggyback",
                format!("{w}{}; DROP TABLE devices{}", homoglyph(rng), tail(rng)),
            ));
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::JoinPiggyback,
                "piggyback",
                format!("{w}{}; DELETE FROM readings{}", homoglyph(rng), tail(rng)),
            ));
        }
        SlotKind::Numeric => {
            // Numeric tautology in the JOIN's WHERE: no quote needed.
            for _ in 0..2 {
                let n = rng.below(100);
                let m = rng.range(1, 10);
                specs.push((
                    AttackClass::NumericContext,
                    "tautology",
                    format!("{n} {} {m} = {m}", or_kw(rng)),
                ));
            }
            // UNION pull matching the joined select list.
            let n = rng.below(100);
            specs.push((
                AttackClass::NumericContext,
                "union",
                format!("{n} UNION SELECT username, id FROM users"),
            ));
            // Column-reference mimicry: same arity as the learned literal.
            specs.push((AttackClass::SyntaxMimicry, "mimicry", "watts".to_string()));
            // JOIN-clause piggybacking in the verbatim numeric splice.
            for drop in ["DROP TABLE devices", "DELETE FROM devices"] {
                let n = rng.below(100);
                specs.push((
                    AttackClass::JoinPiggyback,
                    "piggyback",
                    format!("{n}; {drop}"),
                ));
            }
        }
    }
}

/// Attack families for the GROUP BY/HAVING template. The headline class is
/// aggregate-alias mimicry: the learned HAVING comparand is an integer
/// literal; the attacker substitutes the projection alias (`total`, `cnt`)
/// — same node count, different node type — which only the node-wise
/// second step of the detector can tell apart.
fn group_by_specs(rng: &mut ConformanceRng, specs: &mut Vec<(AttackClass, &'static str, String)>) {
    // Tautology over the grouped rows.
    for _ in 0..2 {
        let n = rng.below(100);
        let m = rng.range(1, 10);
        specs.push((
            AttackClass::NumericContext,
            "tautology",
            format!("{n} {} {m} = {m}", or_kw(rng)),
        ));
    }
    // Aggregate-alias mimicry: arity preserved, node type swapped.
    for alias in ["total", "cnt"] {
        specs.push((
            AttackClass::AggregateMimicry,
            "aggregate-alias",
            alias.to_string(),
        ));
    }
    // Aggregate swap: a second aggregate call changes the node count, so
    // even the structural step catches it (contrast with the alias rows).
    specs.push((
        AttackClass::AggregateMimicry,
        "aggregate-swap",
        "SUM(day)".to_string(),
    ));
    // Piggyback through the verbatim HAVING splice.
    let n = rng.below(100);
    specs.push((
        AttackClass::Piggyback,
        "piggyback",
        format!("{n}; DELETE FROM readings"),
    ));
}

/// Attack families for the IN-subquery template. The headline class is the
/// UNION smuggled *inside* the parenthesized subselect: the outer
/// statement keeps its learned shape, the exfiltration hides one level
/// down — `SubselectBegin … UnionItem … SubselectEnd` on the item stack.
fn subquery_specs(rng: &mut ConformanceRng, specs: &mut Vec<(AttackClass, &'static str, String)>) {
    // Classic ASCII attempt that also closes the paren: neutralized by
    // escaping (contrast row).
    let w = rng.benign_word(1, 6);
    specs.push((
        AttackClass::ClassicSqli,
        "tautology",
        format!("{w}') {} ('a'='a", or_kw(rng)),
    ));
    // UNION inside the subquery: the homoglyph closes the string, the
    // template's own `')` suffix closes the smuggled arm's final literal
    // and the subselect, so the statement still parses.
    for _ in 0..2 {
        let w = rng.benign_word(1, 6);
        let user = rng.benign_word(1, 6);
        specs.push((
            AttackClass::SubqueryUnion,
            "union",
            format!(
                "{w}{} UNION SELECT password FROM users WHERE username = {}{user}",
                homoglyph(rng),
                homoglyph(rng)
            ),
        ));
    }
    // Homoglyph breakout that closes the subquery and appends a tautology
    // to the outer WHERE, commenting out the template suffix.
    for _ in 0..2 {
        let w = rng.benign_word(1, 6);
        let n = rng.range(1, 10);
        specs.push((
            AttackClass::HomoglyphFirstOrder,
            "tautology",
            format!(
                "{w}{}) {} {n} = {n}{}",
                homoglyph(rng),
                or_kw(rng),
                tail(rng)
            ),
        ));
    }
    // Piggyback after closing the subquery.
    let w = rng.benign_word(1, 6);
    specs.push((
        AttackClass::Piggyback,
        "piggyback",
        format!("{w}{}); DROP TABLE devices{}", homoglyph(rng), tail(rng)),
    ));
}

/// Select list used by UNION payloads so column counts line up with the
/// template's outer query.
fn union_columns(template: &str) -> Option<&'static str> {
    match template {
        "tickets-lookup" => Some("id, username, password"),
        "login" | "like-search" => Some("password"),
        "watts-filter" => Some("username, id"),
        _ => None,
    }
}

/// Generates the full conformance case list for `seed`. Pure: the same
/// seed always yields the same cases, in the same order.
#[must_use]
pub fn generate_cases(seed: u64) -> Vec<Case> {
    let mut rng = ConformanceRng::new(seed);
    let mut cases = Vec::new();
    for t in templates() {
        for i in 0..3 {
            let payload = t.benign_payload(&mut rng);
            cases.push(Case {
                id: format!("{}/benign-{i}", t.name),
                template: t.name,
                construct: t.construct,
                class: None,
                variant: "benign",
                sql: t.build(&payload),
                payload,
            });
        }
        let mut per_variant: Vec<(&'static str, u32)> = Vec::new();
        for (class, variant, payload) in attack_specs(t, &mut rng) {
            let key = format!("{}-{variant}", class_key(Some(class)));
            let n = match per_variant.iter_mut().find(|(k, _)| *k == variant) {
                Some((_, n)) => {
                    *n += 1;
                    *n
                }
                None => {
                    per_variant.push((variant, 0));
                    0
                }
            };
            cases.push(Case {
                id: format!("{}/{key}-{n}", t.name),
                template: t.name,
                construct: t.construct,
                class: Some(class),
                variant,
                sql: t.build(&payload),
                payload,
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_cases(7);
        let b = generate_cases(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn different_seeds_vary_payloads() {
        let a = generate_cases(1);
        let b = generate_cases(2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.payload != y.payload));
    }

    #[test]
    fn ids_are_unique() {
        let cases = generate_cases(3);
        let mut ids: Vec<&str> = cases.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn every_required_taxonomy_variant_is_generated() {
        let cases = generate_cases(5);
        for variant in [
            "benign",
            "tautology",
            "union",
            "piggyback",
            "comment-mimicry",
            "mimicry",
            "encoding",
            "stored-xss",
            "aggregate-alias",
            "aggregate-swap",
        ] {
            assert!(
                cases.iter().any(|c| c.variant == variant),
                "missing variant {variant}"
            );
        }
        for class in [
            AttackClass::ClassicSqli,
            AttackClass::NumericContext,
            AttackClass::HomoglyphFirstOrder,
            AttackClass::SyntaxMimicry,
            AttackClass::Piggyback,
            AttackClass::SubqueryUnion,
            AttackClass::AggregateMimicry,
            AttackClass::JoinPiggyback,
            AttackClass::StoredXss,
        ] {
            assert!(
                cases.iter().any(|c| c.class == Some(class)),
                "missing class {class}"
            );
        }
    }

    #[test]
    fn every_construct_family_has_templates_and_attacks() {
        let cases = generate_cases(5);
        for construct in Construct::all() {
            assert!(
                cases
                    .iter()
                    .any(|c| c.construct == construct && c.class.is_none()),
                "missing benign case for construct {}",
                construct.label()
            );
            assert!(
                cases
                    .iter()
                    .any(|c| c.construct == construct && c.class.is_some()),
                "missing attack case for construct {}",
                construct.label()
            );
        }
    }

    #[test]
    fn construct_attack_cases_parse_after_decoding() {
        // Every non-contrast attack on the new construct templates must
        // survive charset folding as valid SQL — the attacks are designed
        // to execute, not to crash the parser.
        let cases = generate_cases(11);
        for c in cases.iter().filter(|c| {
            c.construct != Construct::Basic && c.class != Some(AttackClass::ClassicSqli)
        }) {
            septic_sql::decode_and_parse(&c.sql)
                .unwrap_or_else(|e| panic!("{} must parse: {e}\n{}", c.id, c.sql));
        }
    }

    #[test]
    fn subquery_union_stays_inside_the_subselect() {
        let cases = generate_cases(5);
        let case = cases
            .iter()
            .find(|c| c.class == Some(AttackClass::SubqueryUnion))
            .expect("subquery-union case");
        let parsed = septic_sql::decode_and_parse(&case.sql).expect("parses");
        let qs = septic_sql::items::lower_all(&parsed.statements);
        let profile = qs.construct_profile();
        assert!(profile.subquery && profile.union, "{:?}", profile);
    }

    #[test]
    fn benign_cases_parse_and_quoted_slots_survive_escaping() {
        let cases = generate_cases(11);
        for c in cases.iter().filter(|c| c.class.is_none()) {
            septic_sql::decode_and_parse(&c.sql).expect("benign case parses");
        }
    }
}
