//! Seeded, grammar-driven case generation.
//!
//! A small web-app grammar: query **templates** over a fixed schema, each
//! with one user-controlled slot (quoted string or unquoted numeric — the
//! two splice contexts of the paper's vulnerable PHP apps). From every
//! template the generator derives:
//!
//! * **benign** instances (random safe literals) — the training corpus and
//!   the false-positive probe;
//! * **attack** variants per taxonomy class ([`AttackClass`]): tautologies,
//!   UNION pulls, piggybacked statements, comment/syntax mimicry, and
//!   encoding tricks (homoglyph quotes, version comments, fullwidth
//!   comment starters, hex literals).
//!
//! The application model is faithful to the paper's setup: quoted slots
//! are sanitized with `mysql_real_escape_string` before splicing (so
//! classic ASCII SQLI is *neutralized* and only semantic-mismatch classes
//! get through), numeric slots are spliced verbatim (the classic PHP bug —
//! escaping without quoting protects nothing).

use septic_attacks::AttackClass;
use septic_webapp::php::mysql_real_escape_string;

use crate::rng::ConformanceRng;

/// Splice context of a template's user slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Inside a `'…'` literal; the app escapes the payload first.
    Quoted,
    /// Unquoted numeric position; the app splices the payload verbatim.
    Numeric,
}

/// One vulnerable program point: a query with a single user slot.
#[derive(Debug, Clone, Copy)]
pub struct Template {
    /// Stable name, used in case ids and the golden matrix.
    pub name: &'static str,
    /// Query text before the slot (includes the opening quote for
    /// [`SlotKind::Quoted`] slots and the `/* qid:… */` program-point id).
    pub prefix: &'static str,
    /// Query text after the slot (closing quote for quoted slots).
    pub suffix: &'static str,
    /// Splice context.
    pub slot: SlotKind,
}

impl Template {
    /// Builds the SQL the application would send for `payload`, applying
    /// the application-side sanitization of the slot kind.
    #[must_use]
    pub fn build(&self, payload: &str) -> String {
        let spliced = match self.slot {
            SlotKind::Quoted => mysql_real_escape_string(payload),
            SlotKind::Numeric => payload.to_string(),
        };
        format!("{}{}{}", self.prefix, spliced, self.suffix)
    }

    /// A random benign payload for the slot.
    pub fn benign_payload(&self, rng: &mut ConformanceRng) -> String {
        match self.slot {
            SlotKind::Quoted => rng.benign_word(1, 10),
            SlotKind::Numeric => rng.below(5000).to_string(),
        }
    }
}

/// The fixed template set. Order is part of the golden-matrix contract.
#[must_use]
pub fn templates() -> &'static [Template] {
    &[
        Template {
            name: "tickets-lookup",
            prefix: "/* qid:conf-tickets */ SELECT * FROM tickets WHERE reservID = '",
            suffix: "' AND creditCard = 1234",
            slot: SlotKind::Quoted,
        },
        Template {
            name: "login",
            prefix: "/* qid:conf-login */ SELECT id FROM users WHERE username = '",
            suffix: "' AND password = 'secret1'",
            slot: SlotKind::Quoted,
        },
        Template {
            name: "note-update",
            prefix: "/* qid:conf-update */ UPDATE tickets SET note = '",
            suffix: "' WHERE reservID = 'ID34FG'",
            slot: SlotKind::Quoted,
        },
        Template {
            name: "like-search",
            prefix: "/* qid:conf-like */ SELECT username FROM users WHERE username LIKE '",
            suffix: "%'",
            slot: SlotKind::Quoted,
        },
        Template {
            name: "reading-insert",
            prefix: "/* qid:conf-insert */ INSERT INTO readings (device, watts, day) VALUES ('",
            suffix: "', 5, 1)",
            slot: SlotKind::Quoted,
        },
        Template {
            name: "watts-filter",
            prefix: "/* qid:conf-watts */ SELECT device, watts FROM readings WHERE day = ",
            suffix: " AND watts > 10",
            slot: SlotKind::Numeric,
        },
        Template {
            name: "purge-day",
            prefix: "/* qid:conf-purge */ DELETE FROM readings WHERE day < ",
            suffix: "",
            slot: SlotKind::Numeric,
        },
    ]
}

/// Quote homoglyphs the connection charset folds to `'` — the characters
/// `mysql_real_escape_string` passes untouched.
const QUOTE_HOMOGLYPHS: [char; 3] = ['\u{02BC}', '\u{2019}', '\u{FF07}'];

/// Comment tails that swallow the template suffix after a breakout.
const COMMENT_TAILS: [&str; 3] = ["-- ", "#", " -- "];

/// Spellings of `OR` (keyword case is free in MySQL; WAF regexes that
/// anchor on a fixed case miss the variants).
const OR_SPELLINGS: [&str; 4] = ["OR", "or", "Or", "oR"];

fn homoglyph(rng: &mut ConformanceRng) -> char {
    *rng.pick(&QUOTE_HOMOGLYPHS)
}

fn tail(rng: &mut ConformanceRng) -> &'static str {
    COMMENT_TAILS[rng.below(COMMENT_TAILS.len() as u64) as usize]
}

fn or_kw(rng: &mut ConformanceRng) -> &'static str {
    OR_SPELLINGS[rng.below(OR_SPELLINGS.len() as u64) as usize]
}

/// One generated conformance case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Stable id, e.g. `login/homoglyph-tautology-1`.
    pub id: String,
    /// Template name.
    pub template: &'static str,
    /// `None` for benign instances.
    pub class: Option<AttackClass>,
    /// Taxonomy variant: `benign`, `tautology`, `union`, `piggyback`,
    /// `comment-mimicry`, `mimicry`, `encoding`, `stored-xss`.
    pub variant: &'static str,
    /// The raw user payload, before application-side sanitization.
    pub payload: String,
    /// The SQL the application sends (payload sanitized and spliced).
    pub sql: String,
}

/// Stable kebab-case key for the matrix `class` column.
#[must_use]
pub fn class_key(class: Option<AttackClass>) -> &'static str {
    match class {
        None => "benign",
        Some(AttackClass::ClassicSqli) => "classic-sqli",
        Some(AttackClass::NumericContext) => "numeric-context",
        Some(AttackClass::HomoglyphFirstOrder) => "homoglyph-first-order",
        Some(AttackClass::SyntaxMimicry) => "syntax-mimicry",
        Some(AttackClass::SecondOrder) => "second-order",
        Some(AttackClass::Piggyback) => "piggyback",
        Some(AttackClass::StoredXss) => "stored-xss",
        Some(AttackClass::Rfi) => "rfi",
        Some(AttackClass::Lfi) => "lfi",
        Some(AttackClass::Osci) => "osci",
        Some(AttackClass::Rce) => "rce",
    }
}

/// Attack payloads derived for one template: `(class, variant, payload)`.
/// Every payload here is *designed to survive the application-side
/// sanitization* of the slot (except the classic-SQLI contrast cases,
/// which exist to show sanitization working).
fn attack_specs(
    t: &Template,
    rng: &mut ConformanceRng,
) -> Vec<(AttackClass, &'static str, String)> {
    let mut specs = Vec::new();
    match t.slot {
        SlotKind::Quoted => {
            // Classic ASCII tautology: neutralized by escaping, shown for
            // contrast (and as the WAF's bread and butter).
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::ClassicSqli,
                "tautology",
                format!("{w}' {} {n}={n}-- ", or_kw(rng)),
            ));
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::ClassicSqli,
                "tautology",
                format!("{w}' {} 'a'='a", or_kw(rng)),
            ));
            // Homoglyph breakout tautology: the escape function does not
            // recognise the quote, the connection charset folds it.
            for _ in 0..2 {
                let w = rng.benign_word(1, 6);
                let n = rng.range(1, 10);
                specs.push((
                    AttackClass::HomoglyphFirstOrder,
                    "tautology",
                    format!(
                        "{w}{} {} {n} = {n}{}",
                        homoglyph(rng),
                        or_kw(rng),
                        tail(rng)
                    ),
                ));
            }
            // Homoglyph UNION pull, select-list arity matched to the
            // template so the query would actually execute.
            if let Some(cols) = union_columns(t.name) {
                for _ in 0..2 {
                    let w = rng.benign_word(1, 6);
                    specs.push((
                        AttackClass::HomoglyphFirstOrder,
                        "union",
                        format!(
                            "{w}{} UNION SELECT {cols} FROM users{}",
                            homoglyph(rng),
                            tail(rng)
                        ),
                    ));
                }
            }
            // Encoding tricks: version comment around the operator, and a
            // fullwidth `＃` (folds to `#`) hiding the suffix.
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::HomoglyphFirstOrder,
                "encoding",
                format!(
                    "{w}{} /*!{} */ {n}={n}{}",
                    homoglyph(rng),
                    or_kw(rng),
                    tail(rng)
                ),
            ));
            let w = rng.benign_word(1, 6);
            let n = rng.range(1, 10);
            specs.push((
                AttackClass::HomoglyphFirstOrder,
                "encoding",
                format!("{w}{} {} {n}={n}\u{FF03}", homoglyph(rng), or_kw(rng)),
            ));
            // Syntax mimicry (Figure 4): reproduces the learned arity, only
            // a node type differs — the tickets template has the right
            // shape for it.
            if t.name == "tickets-lookup" {
                for _ in 0..2 {
                    let w = rng.benign_word(1, 6);
                    let n = rng.range(1, 10);
                    specs.push((
                        AttackClass::SyntaxMimicry,
                        "comment-mimicry",
                        format!("{w}{} AND {n} = {n}{}", homoglyph(rng), tail(rng)),
                    ));
                }
            }
            // Piggyback through the homoglyph breakout.
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::Piggyback,
                "piggyback",
                format!("{w}{}; DROP TABLE users{}", homoglyph(rng), tail(rng)),
            ));
            let w = rng.benign_word(1, 6);
            specs.push((
                AttackClass::Piggyback,
                "piggyback",
                format!("{w}{}; DELETE FROM tickets{}", homoglyph(rng), tail(rng)),
            ));
            // Stored XSS rides the INSERT template: structurally clean SQL,
            // the payload is the attack.
            if t.name == "reading-insert" {
                let n = rng.range(1, 100);
                specs.push((
                    AttackClass::StoredXss,
                    "stored-xss",
                    format!("<script>alert({n})</script>"),
                ));
                specs.push((
                    AttackClass::StoredXss,
                    "stored-xss",
                    "<img src=x onerror=alert(1)>".to_string(),
                ));
            }
        }
        SlotKind::Numeric => {
            // Numeric-context tautology: no quote needed at all.
            for _ in 0..2 {
                let n = rng.below(100);
                let m = rng.range(1, 10);
                specs.push((
                    AttackClass::NumericContext,
                    "tautology",
                    format!("{n} {} {m} = {m}", or_kw(rng)),
                ));
            }
            // UNION pull (only where the outer select has a list to match).
            if let Some(cols) = union_columns(t.name) {
                for _ in 0..2 {
                    let n = rng.below(100);
                    specs.push((
                        AttackClass::NumericContext,
                        "union",
                        format!("{n} UNION SELECT {cols} FROM users"),
                    ));
                }
            }
            // Comment mimicry: block comments instead of whitespace dodge
            // space-anchored WAF regexes; the DBMS strips them.
            let n = rng.below(100);
            let m = rng.range(1, 10);
            specs.push((
                AttackClass::NumericContext,
                "comment-mimicry",
                format!("{n}/**/{}/**/{m}={m}", or_kw(rng)),
            ));
            // Encoding trick: hex literal keeps the tautology digit-free.
            let m = rng.range(1, 10);
            specs.push((
                AttackClass::NumericContext,
                "encoding",
                format!("0x{m:02x} {} 0x{m:02x} = 0x{m:02x}", or_kw(rng)),
            ));
            // Syntax mimicry: a column reference has the arity of the
            // learned integer literal but a different node type.
            specs.push((AttackClass::SyntaxMimicry, "mimicry", "watts".to_string()));
            specs.push((AttackClass::SyntaxMimicry, "mimicry", "day".to_string()));
            // Piggyback: numeric context needs no breakout at all.
            let n = rng.below(100);
            specs.push((
                AttackClass::Piggyback,
                "piggyback",
                format!("{n}; DROP TABLE readings"),
            ));
        }
    }
    specs
}

/// Select list used by UNION payloads so column counts line up with the
/// template's outer query.
fn union_columns(template: &str) -> Option<&'static str> {
    match template {
        "tickets-lookup" => Some("id, username, password"),
        "login" | "like-search" => Some("password"),
        "watts-filter" => Some("username, id"),
        _ => None,
    }
}

/// Generates the full conformance case list for `seed`. Pure: the same
/// seed always yields the same cases, in the same order.
#[must_use]
pub fn generate_cases(seed: u64) -> Vec<Case> {
    let mut rng = ConformanceRng::new(seed);
    let mut cases = Vec::new();
    for t in templates() {
        for i in 0..3 {
            let payload = t.benign_payload(&mut rng);
            cases.push(Case {
                id: format!("{}/benign-{i}", t.name),
                template: t.name,
                class: None,
                variant: "benign",
                sql: t.build(&payload),
                payload,
            });
        }
        let mut per_variant: Vec<(&'static str, u32)> = Vec::new();
        for (class, variant, payload) in attack_specs(t, &mut rng) {
            let key = format!("{}-{variant}", class_key(Some(class)));
            let n = match per_variant.iter_mut().find(|(k, _)| *k == variant) {
                Some((_, n)) => {
                    *n += 1;
                    *n
                }
                None => {
                    per_variant.push((variant, 0));
                    0
                }
            };
            cases.push(Case {
                id: format!("{}/{key}-{n}", t.name),
                template: t.name,
                class: Some(class),
                variant,
                sql: t.build(&payload),
                payload,
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_cases(7);
        let b = generate_cases(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn different_seeds_vary_payloads() {
        let a = generate_cases(1);
        let b = generate_cases(2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.payload != y.payload));
    }

    #[test]
    fn ids_are_unique() {
        let cases = generate_cases(3);
        let mut ids: Vec<&str> = cases.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn every_required_taxonomy_variant_is_generated() {
        let cases = generate_cases(5);
        for variant in [
            "benign",
            "tautology",
            "union",
            "piggyback",
            "comment-mimicry",
            "mimicry",
            "encoding",
            "stored-xss",
        ] {
            assert!(
                cases.iter().any(|c| c.variant == variant),
                "missing variant {variant}"
            );
        }
        for class in [
            AttackClass::ClassicSqli,
            AttackClass::NumericContext,
            AttackClass::HomoglyphFirstOrder,
            AttackClass::SyntaxMimicry,
            AttackClass::Piggyback,
            AttackClass::StoredXss,
        ] {
            assert!(
                cases.iter().any(|c| c.class == Some(class)),
                "missing class {class}"
            );
        }
    }

    #[test]
    fn benign_cases_parse_and_quoted_slots_survive_escaping() {
        let cases = generate_cases(11);
        for c in cases.iter().filter(|c| c.class.is_none()) {
            septic_sql::decode_and_parse(&c.sql).expect("benign case parses");
        }
    }
}
