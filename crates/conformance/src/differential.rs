//! Differential driver: every generated case through the full stack under
//! five defense configurations, yielding the golden detection matrix.
//!
//! Configurations, in fixed column order:
//!
//! * `sanitize-only` — the application's `mysql_real_escape_string` is the
//!   only defense (the paper's baseline);
//! * `waf` — ModSecurity screens the HTTP parameter first, then the
//!   sanitized query runs unguarded;
//! * `septic-detection` — SEPTIC in detection mode (logs, never drops);
//! * `septic-prevention` — SEPTIC in prevention mode (drops attacks);
//! * `septic-structural` — prevention with the syntactic step disabled
//!   (the step-1-only ablation: mimicry cases slip through).
//!
//! Each case runs against a **fresh** deployment (schema + training), so
//! cases cannot influence one another — a piggybacked `DROP TABLE` in one
//! row cannot change the verdict of the next — and the matrix is a pure
//! function of the seed.

use std::sync::Arc;

use septic::{detect_sqli, Mode, QueryModel, Septic};
use septic_dbms::{
    Connection, DbError, MemIo, RecoveryReport, Server, ServerConfig, StorageIo, WalConfig,
};
use septic_http::HttpRequest;
use septic_telemetry::MetricsSnapshot;
use septic_waf::ModSecurity;
use serde::{Deserialize, Serialize};

use crate::grammar::{class_key, generate_cases, templates, Case, SlotKind, Template};
use crate::metamorphic::qs_of;

/// The fixed seed the checked-in golden matrix is generated from (the DSN
/// 2017 session date). Changing it is a reviewed golden-file change.
pub const MATRIX_SEED: u64 = 20_170_626;

/// Defense configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    SanitizeOnly,
    Waf,
    SepticDetection,
    SepticPrevention,
    SepticStructural,
}

impl Defense {
    /// All configurations, in golden-matrix column order.
    #[must_use]
    pub fn all() -> [Defense; 5] {
        [
            Defense::SanitizeOnly,
            Defense::Waf,
            Defense::SepticDetection,
            Defense::SepticPrevention,
            Defense::SepticStructural,
        ]
    }

    /// Stable column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Defense::SanitizeOnly => "sanitize-only",
            Defense::Waf => "waf",
            Defense::SepticDetection => "septic-detection",
            Defense::SepticPrevention => "septic-prevention",
            Defense::SepticStructural => "septic-structural",
        }
    }
}

/// Outcome of one case under one defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The query executed and nothing flagged it.
    Passed,
    /// The request or query was refused (WAF block or SEPTIC drop).
    Blocked,
    /// SEPTIC detection mode logged an attack but let the query run.
    Flagged,
    /// The DBMS front end rejected the query text.
    ParseError,
}

impl Verdict {
    /// Stable cell label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Passed => "passed",
            Verdict::Blocked => "blocked",
            Verdict::Flagged => "flagged",
            Verdict::ParseError => "parse-error",
        }
    }

    /// True when the defense stopped or at least reported the case.
    #[must_use]
    pub fn stopped(self) -> bool {
        matches!(self, Verdict::Blocked | Verdict::Flagged)
    }
}

/// One row of the golden matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    pub id: String,
    pub template: String,
    /// Construct family of the template: `basic`, `join`, `group-by`,
    /// `subquery`.
    #[serde(default)]
    pub construct: String,
    pub class: String,
    pub variant: String,
    pub payload: String,
    /// Ground truth, computed against the trained QM independently of any
    /// defense: does the (sanitized, decoded) query deviate from the
    /// learned structure — or carry a stored-injection payload?
    pub harmful: bool,
    pub sanitize_only: String,
    pub waf: String,
    pub septic_detection: String,
    pub septic_prevention: String,
    pub septic_structural: String,
}

/// Per-class aggregate: how many of the class's cases each defense
/// stopped (blocked or flagged). For the `benign` row this is the
/// false-positive count and must be zero for the SEPTIC columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    pub class: String,
    pub cases: u32,
    pub harmful: u32,
    pub sanitize_only: u32,
    pub waf: u32,
    pub septic_detection: u32,
    pub septic_prevention: u32,
    pub septic_structural: u32,
}

/// The machine-readable golden detection matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionMatrix {
    /// Generator/format version; bump on intentional format changes.
    pub version: String,
    /// The seed every payload and verdict derives from.
    pub seed: u64,
    /// Column order of the per-defense fields.
    pub defenses: Vec<String>,
    pub cases: Vec<CaseResult>,
    pub summary: Vec<SummaryRow>,
}

/// Fixed training payloads per slot kind — two distinct benign instances
/// per template, deliberately independent of the case-generation seed so
/// the learned models are part of the matrix contract.
fn training_payloads(t: &Template) -> [&'static str; 2] {
    match t.slot {
        SlotKind::Quoted => ["train0", "train1"],
        SlotKind::Numeric => ["1", "2"],
    }
}

/// Creates the web apps' schema and seed rows.
pub(crate) fn create_schema(conn: &Connection) {
    for sql in [
        "CREATE TABLE users (id INT, username VARCHAR(32), password VARCHAR(32))",
        "INSERT INTO users (id, username, password) VALUES (1, 'alice', 'pw1')",
        "CREATE TABLE tickets (reservID VARCHAR(16), creditCard INT, note VARCHAR(64))",
        "INSERT INTO tickets (reservID, creditCard, note) VALUES ('ID34FG', 1234, 'ok')",
        "CREATE TABLE readings (device VARCHAR(16), watts INT, day INT)",
        "INSERT INTO readings (device, watts, day) VALUES ('dev-1', 50, 1)",
        "CREATE TABLE devices (name VARCHAR(16), owner VARCHAR(32))",
        "INSERT INTO devices (name, owner) VALUES ('dev-1', 'ann'), ('dev-2', 'bob')",
    ] {
        conn.execute(sql).expect("schema setup");
    }
}

/// Builds a fresh deployment for one defense: server + schema, and for the
/// SEPTIC variants a guard trained on every template's benign instances.
/// `use_vm` forces both bytecode-VM hot loops (detection comparison and
/// row-expression evaluation) on or off; `None` keeps the environment
/// default.
fn deployment(
    defense: Defense,
    use_vm: Option<bool>,
) -> (Arc<Server>, Connection, Option<Arc<Septic>>) {
    let server = Server::with_config(ServerConfig {
        allow_multi_statements: true,
        general_log_capacity: 0,
    });
    if let Some(on) = use_vm {
        server.set_expr_vm(on);
    }
    let conn = server.connect();
    create_schema(&conn);
    let septic = match defense {
        Defense::SepticDetection | Defense::SepticPrevention | Defense::SepticStructural => {
            let septic = Arc::new(Septic::new());
            septic.set_event_logging(false);
            if let Some(on) = use_vm {
                septic.set_use_vm(on);
            }
            server.install_guard(septic.clone());
            septic.set_mode(Mode::Training);
            for t in templates() {
                for payload in training_payloads(t) {
                    conn.execute(&t.build(payload)).expect("training query");
                }
            }
            match defense {
                Defense::SepticDetection => septic.set_mode(Mode::DETECTION),
                Defense::SepticStructural => {
                    septic.set_structural_only(true);
                    septic.set_mode(Mode::PREVENTION);
                }
                _ => septic.set_mode(Mode::PREVENTION),
            }
            Some(septic)
        }
        Defense::SanitizeOnly | Defense::Waf => None,
    };
    (server, conn, septic)
}

/// Builds the fresh prevention-mode deployment one golden case runs
/// against: server + schema + a guard trained exactly as the matrix's
/// `septic-prevention` column trains it. Exported so the wire-level
/// golden test (`tests/net_matrix.rs`) serves deployments under the same
/// training contract the in-process matrix uses, instead of
/// approximating it.
#[must_use]
pub fn prevention_deployment() -> Arc<Server> {
    let (server, _conn, _septic) = deployment(Defense::SepticPrevention, None);
    server
}

/// Builds the prevention deployment on a server *recovered from durable
/// storage*: schema and seed rows are committed to a WAL-backed server,
/// the process "dies" (the first server is dropped with no shutdown
/// hook), and a second server rebuilds the database from the write-ahead
/// log alone. A fresh guard is then installed and trained exactly as
/// [`prevention_deployment`] trains it. The golden matrix's
/// `septic-prevention` column must be reproducible on this deployment —
/// recovery is not allowed to perturb a single verdict.
#[must_use]
pub fn recovered_prevention_deployment(
    use_vm: Option<bool>,
) -> (Arc<Server>, Connection, Arc<Septic>, RecoveryReport) {
    let config = || ServerConfig {
        allow_multi_statements: true,
        general_log_capacity: 0,
    };
    let io = MemIo::new();
    let first_io: Arc<dyn StorageIo> = io.clone();
    let (first, _) =
        Server::open_durable(config(), first_io, WalConfig::default()).expect("fresh durable open");
    create_schema(&first.connect());
    // Crash: nothing beyond the per-commit WAL appends survives the drop.
    drop(first);
    let second_io: Arc<dyn StorageIo> = io;
    let (server, report) =
        Server::open_durable(config(), second_io, WalConfig::default()).expect("recovery");
    if let Some(on) = use_vm {
        server.set_expr_vm(on);
    }
    let conn = server.connect();
    let septic = Arc::new(Septic::new());
    septic.set_event_logging(false);
    if let Some(on) = use_vm {
        septic.set_use_vm(on);
    }
    server.install_guard(septic.clone());
    septic.set_mode(Mode::Training);
    for t in templates() {
        for payload in training_payloads(t) {
            conn.execute(&t.build(payload)).expect("training query");
        }
    }
    septic.set_mode(Mode::PREVENTION);
    (server, conn, septic, report)
}

/// Runs one case against a freshly recovered prevention deployment (see
/// [`recovered_prevention_deployment`]) and returns the verdict — the
/// value that must equal the golden matrix's `septic-prevention` cell.
#[must_use]
pub fn run_case_recovered(case: &Case, use_vm: Option<bool>) -> Verdict {
    let (_server, conn, septic, _report) = recovered_prevention_deployment(use_vm);
    let before = {
        let c = septic.counters();
        c.sqli_detected + c.stored_detected
    };
    match conn.execute(&case.sql) {
        Err(DbError::Blocked(_) | DbError::GuardFailure(_)) => Verdict::Blocked,
        Err(DbError::Parse(_)) => Verdict::ParseError,
        Ok(_) | Err(_) => {
            let c = septic.counters();
            if c.sqli_detected + c.stored_detected > before {
                Verdict::Flagged
            } else {
                Verdict::Passed
            }
        }
    }
}

/// Runs one case under one defense and returns the verdict.
#[must_use]
pub fn run_case(case: &Case, defense: Defense) -> Verdict {
    run_case_instrumented(case, defense).0
}

/// [`run_case`] with the bytecode-VM hot loops forced on (`Some(true)`),
/// off (`Some(false)`), or left at the environment default (`None`) —
/// the differential-safety hook: the verdict must not depend on it.
#[must_use]
pub fn run_case_vm(case: &Case, defense: Defense, use_vm: Option<bool>) -> Verdict {
    run_case_instrumented_vm(case, defense, use_vm).0
}

/// [`run_case`], plus the deployment's SEPTIC metrics snapshot (when the
/// defense installs a guard). The snapshot is taken from the fresh
/// per-case deployment after the case ran, so its `septic_attacks_total`
/// is the case's own detection count — the basis of the CI check that the
/// telemetry layer agrees with the golden matrix.
#[must_use]
pub fn run_case_instrumented(case: &Case, defense: Defense) -> (Verdict, Option<MetricsSnapshot>) {
    run_case_instrumented_vm(case, defense, None)
}

/// [`run_case_instrumented`] with an explicit VM override (see
/// [`run_case_vm`]).
#[must_use]
pub fn run_case_instrumented_vm(
    case: &Case,
    defense: Defense,
    use_vm: Option<bool>,
) -> (Verdict, Option<MetricsSnapshot>) {
    if defense == Defense::Waf {
        // The WAF sees the HTTP request — the raw payload, before the
        // application's escaping.
        let waf = ModSecurity::new();
        let request = HttpRequest::post("/conformance").param("input", case.payload.clone());
        if waf.inspect(&request).is_blocked() {
            return (Verdict::Blocked, None);
        }
    }
    let (_server, conn, septic) = deployment(defense, use_vm);
    let detected_before = septic.as_ref().map(|s| {
        let c = s.counters();
        c.sqli_detected + c.stored_detected
    });
    let verdict = match conn.execute(&case.sql) {
        Err(DbError::Blocked(_) | DbError::GuardFailure(_)) => Verdict::Blocked,
        Err(DbError::Parse(_)) => Verdict::ParseError,
        Ok(_) | Err(_) => {
            let flagged = match (&septic, detected_before) {
                (Some(septic), Some(before)) => {
                    let c = septic.counters();
                    c.sqli_detected + c.stored_detected > before
                }
                _ => false,
            };
            if flagged {
                Verdict::Flagged
            } else {
                Verdict::Passed
            }
        }
    };
    (verdict, septic.map(|s| s.metrics_snapshot()))
}

/// Canonical rendering of a case's raw execution outcome on a fresh,
/// unguarded deployment: per-statement column lists and row values on
/// success, or the error on failure. Timing fields are excluded, so the
/// rendering is a pure function of the case. The VM differential tests
/// use it to assert the bytecode VM and the AST walker agree beyond the
/// verdict level.
#[must_use]
pub fn execution_outcome(case: &Case, use_vm: bool) -> String {
    let server = Server::with_config(ServerConfig {
        allow_multi_statements: true,
        general_log_capacity: 0,
    });
    server.set_expr_vm(use_vm);
    let conn = server.connect();
    create_schema(&conn);
    match conn.execute(&case.sql) {
        Ok(result) => result
            .outputs
            .iter()
            .map(|o| format!("columns={:?} rows={:?}", o.columns, o.rows))
            .collect::<Vec<_>>()
            .join("; "),
        Err(e) => format!("error={e:?}"),
    }
}

/// Ground truth for one case: the (sanitized, charset-decoded) query
/// deviates from the QM trained for its template, or carries a stored
/// payload. Computed with the detector directly — no deployment in the
/// loop — so the matrix records what *should* be caught.
#[must_use]
pub fn ground_truth_harmful(case: &Case) -> bool {
    if case.variant == "stored-xss" {
        return true;
    }
    let template = templates()
        .iter()
        .find(|t| t.name == case.template)
        .expect("case template exists");
    let model = QueryModel::from_structure(&qs_of(&template.build(training_payloads(template)[0])));
    let decoded = septic_sql::charset::decode(&case.sql);
    match septic_sql::parse(&decoded.text) {
        // A query the DBMS front end refuses never executes: the attempt
        // failed on its own, so it is not counted as harmful.
        Err(_) => false,
        Ok(parsed) => {
            let qs = septic_sql::items::lower_all(&parsed.statements);
            detect_sqli(&qs, &model).is_attack()
        }
    }
}

/// Builds the full detection matrix for `seed`.
#[must_use]
pub fn build_matrix(seed: u64) -> DetectionMatrix {
    build_matrix_vm(seed, None)
}

/// [`build_matrix`] with the bytecode VM forced on or off in every
/// deployment. The matrix is required to be byte-identical either way —
/// the VM is an execution strategy, never an observable.
#[must_use]
pub fn build_matrix_vm(seed: u64, use_vm: Option<bool>) -> DetectionMatrix {
    let cases = generate_cases(seed);
    let mut results = Vec::with_capacity(cases.len());
    for case in &cases {
        let verdict = |d: Defense| run_case_vm(case, d, use_vm).label().to_string();
        results.push(CaseResult {
            id: case.id.clone(),
            template: case.template.to_string(),
            construct: case.construct.label().to_string(),
            class: class_key(case.class).to_string(),
            variant: case.variant.to_string(),
            payload: case.payload.clone(),
            harmful: ground_truth_harmful(case),
            sanitize_only: verdict(Defense::SanitizeOnly),
            waf: verdict(Defense::Waf),
            septic_detection: verdict(Defense::SepticDetection),
            septic_prevention: verdict(Defense::SepticPrevention),
            septic_structural: verdict(Defense::SepticStructural),
        });
    }
    let summary = summarize(&results);
    DetectionMatrix {
        version: "septic-conformance matrix v2".to_string(),
        seed,
        defenses: Defense::all()
            .iter()
            .map(|d| d.label().to_string())
            .collect(),
        cases: results,
        summary,
    }
}

fn summarize(results: &[CaseResult]) -> Vec<SummaryRow> {
    let stopped = |v: &str| v == "blocked" || v == "flagged";
    let mut rows: Vec<SummaryRow> = Vec::new();
    for r in results {
        if !rows.iter().any(|row| row.class == r.class) {
            rows.push(SummaryRow {
                class: r.class.clone(),
                cases: 0,
                harmful: 0,
                sanitize_only: 0,
                waf: 0,
                septic_detection: 0,
                septic_prevention: 0,
                septic_structural: 0,
            });
        }
        let row = rows
            .iter_mut()
            .find(|row| row.class == r.class)
            .expect("row just ensured");
        row.cases += 1;
        row.harmful += u32::from(r.harmful);
        row.sanitize_only += u32::from(stopped(&r.sanitize_only));
        row.waf += u32::from(stopped(&r.waf));
        row.septic_detection += u32::from(stopped(&r.septic_detection));
        row.septic_prevention += u32::from(stopped(&r.septic_prevention));
        row.septic_structural += u32::from(stopped(&r.septic_structural));
    }
    rows
}

/// Canonical serialization of the matrix: pretty JSON with a trailing
/// newline. Byte-identical across runs for a given seed — no floats,
/// timestamps, or hash-ordered containers anywhere in the structure.
///
/// # Panics
///
/// Panics when serialization fails (plain data, cannot happen).
#[must_use]
pub fn canonical_json(matrix: &DetectionMatrix) -> String {
    let mut json = serde_json::to_string_pretty(matrix).expect("matrix serializes");
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_labels_are_stable() {
        let labels: Vec<&str> = Defense::all().iter().map(|d| d.label()).collect();
        assert_eq!(
            labels,
            vec![
                "sanitize-only",
                "waf",
                "septic-detection",
                "septic-prevention",
                "septic-structural"
            ]
        );
    }

    #[test]
    fn benign_case_passes_everywhere() {
        let cases = generate_cases(MATRIX_SEED);
        let benign = cases.iter().find(|c| c.class.is_none()).expect("benign");
        for defense in Defense::all() {
            assert_eq!(
                run_case(benign, defense),
                Verdict::Passed,
                "benign case {} under {}",
                benign.id,
                defense.label()
            );
        }
    }

    #[test]
    fn homoglyph_tautology_blocked_by_prevention_not_sanitization() {
        let cases = generate_cases(MATRIX_SEED);
        let attack = cases
            .iter()
            .find(|c| c.variant == "tautology" && c.id.contains("homoglyph"))
            .expect("homoglyph tautology case");
        assert!(ground_truth_harmful(attack), "{}", attack.sql);
        assert_eq!(run_case(attack, Defense::SanitizeOnly), Verdict::Passed);
        assert_eq!(
            run_case(attack, Defense::SepticPrevention),
            Verdict::Blocked
        );
        assert_eq!(run_case(attack, Defense::SepticDetection), Verdict::Flagged);
    }

    #[test]
    fn mimicry_slips_past_structural_only() {
        let cases = generate_cases(MATRIX_SEED);
        let mimicry = cases
            .iter()
            .find(|c| c.variant == "comment-mimicry" && c.template == "tickets-lookup")
            .expect("mimicry case");
        assert_eq!(
            run_case(mimicry, Defense::SepticPrevention),
            Verdict::Blocked
        );
        assert_eq!(
            run_case(mimicry, Defense::SepticStructural),
            Verdict::Passed
        );
    }

    #[test]
    fn join_piggyback_blocked_by_prevention_not_sanitization() {
        let cases = generate_cases(MATRIX_SEED);
        let attack = cases
            .iter()
            .find(|c| c.id.starts_with("device-join/join-piggyback"))
            .expect("join piggyback case");
        assert!(ground_truth_harmful(attack), "{}", attack.sql);
        assert_eq!(run_case(attack, Defense::SanitizeOnly), Verdict::Passed);
        assert_eq!(
            run_case(attack, Defense::SepticPrevention),
            Verdict::Blocked
        );
    }

    #[test]
    fn aggregate_alias_mimicry_slips_past_structural_only() {
        let cases = generate_cases(MATRIX_SEED);
        let mimicry = cases
            .iter()
            .find(|c| c.variant == "aggregate-alias")
            .expect("aggregate-alias case");
        assert!(ground_truth_harmful(mimicry), "{}", mimicry.sql);
        assert_eq!(
            run_case(mimicry, Defense::SepticPrevention),
            Verdict::Blocked
        );
        // Same node count as the trained shape: the structural-only
        // ablation cannot see the literal→alias swap.
        assert_eq!(
            run_case(mimicry, Defense::SepticStructural),
            Verdict::Passed
        );
    }

    #[test]
    fn recovered_deployment_reproduces_prevention_verdicts() {
        let cases = generate_cases(MATRIX_SEED);
        let benign = cases.iter().find(|c| c.class.is_none()).expect("benign");
        // Pick an attack the live prevention deployment actually blocks
        // (escaping defuses some tautology spellings, so filter on the
        // live verdict rather than the variant name).
        let attack = cases
            .iter()
            .filter(|c| c.class.is_some())
            .find(|c| run_case(c, Defense::SepticPrevention) == Verdict::Blocked)
            .expect("a blocked attack case");
        assert_eq!(
            run_case_recovered(benign, None),
            run_case(benign, Defense::SepticPrevention)
        );
        assert_eq!(run_case_recovered(attack, None), Verdict::Blocked);
    }

    #[test]
    fn union_in_subquery_blocked_by_prevention_not_sanitization() {
        let cases = generate_cases(MATRIX_SEED);
        let attack = cases
            .iter()
            .find(|c| c.id.starts_with("device-audit/subquery-union"))
            .expect("subquery union case");
        assert!(ground_truth_harmful(attack), "{}", attack.sql);
        assert_eq!(run_case(attack, Defense::SanitizeOnly), Verdict::Passed);
        assert_eq!(
            run_case(attack, Defense::SepticPrevention),
            Verdict::Blocked
        );
        assert_eq!(run_case(attack, Defense::SepticDetection), Verdict::Flagged);
    }
}
