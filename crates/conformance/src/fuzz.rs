//! Deterministic byte-level fuzz harness for `crates/sql`.
//!
//! No nightly, no cargo-fuzz: a seeded xorshift corpus mutator runs inside
//! `cargo test`, treats any panic in decode → parse → lower → display →
//! reparse as a failure, and minimizes the offending input with a greedy
//! shrinker. Every iteration derives its own seed from the run seed, so a
//! failure reproduces exactly from the numbers printed with it:
//!
//! ```text
//! mutant_for(iteration_seed(run_seed, i), &seed_corpus(), max_len)
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use septic::{detect_sqli, detect_sqli_vm, QueryModel};
use septic_dbms::{Server, ServerConfig};
use septic_sql::{charset, items, parse};

use crate::grammar::generate_cases;
use crate::rng::{splitmix64, ConformanceRng};

/// Default run seed for the CI fuzz budget.
pub const FUZZ_SEED: u64 = 0x5345_5054_4943; // "SEPTIC" in ASCII

/// Shape of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Run seed; every iteration seed derives from it.
    pub seed: u64,
    /// Mutants to generate and probe.
    pub iterations: u64,
    /// Length cap for mutants, in bytes.
    pub max_len: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: FUZZ_SEED,
            iterations: 10_000,
            max_len: 256,
        }
    }
}

/// One reproducible failure.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Iteration index within the run.
    pub iteration: u64,
    /// The derived seed: `mutant_for(seed, …)` regenerates `input`.
    pub seed: u64,
    /// The mutant that panicked the pipeline.
    pub input: Vec<u8>,
    /// Greedily minimized still-panicking input.
    pub minimized: Vec<u8>,
    /// The panic payload.
    pub message: String,
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    pub iterations: u64,
    pub corpus_size: usize,
    pub failures: Vec<FuzzFailure>,
}

/// SQL fragments the mutator splices in: quote/comment starters, homoglyph
/// bytes, keywords — the lexer's sharp edges.
const DICTIONARY: &[&str] = &[
    "'", "''", "\\'", "\"", "`", "/*", "*/", "/*!", "/*!40101", "-- ", "--", "#", ";", "(", ")",
    ",", "=", "<=>", "<<", "0x", "0xff", "?", "\u{02BC}", "\u{2019}", "\u{FF07}", "\u{FF03}",
    "SELECT", "UNION", "WHERE", "LIKE", "BETWEEN", "CASE", "WHEN", "NULL", "NOT", "IN", "EXISTS",
    "ORDER BY", "LIMIT", "JOIN", "VALUES", "DIV", "1e999", ".5", "-0",
];

/// The seed corpus: every generated conformance case (benign and attack)
/// plus hand-picked lexer edge cases.
#[must_use]
pub fn seed_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = generate_cases(FUZZ_SEED)
        .into_iter()
        .map(|c| c.sql.into_bytes())
        .collect();
    for extra in [
        "SELECT * FROM t WHERE a = 'it''s' AND b = .5e2",
        "SELECT a FROM t WHERE a IN (SELECT b FROM u) AND c BETWEEN 1 AND 2",
        "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
        "INSERT INTO t (a) VALUES (?), (0xdead)",
        "SELECT /*! STRAIGHT_JOIN */ a FROM t -- tail",
        "SELECT 1; SELECT 2; SELECT 3",
        "'\u{02BC}\u{FF07}`\"#/*",
    ] {
        corpus.push(extra.as_bytes().to_vec());
    }
    corpus
}

/// Seed for iteration `i` of a run.
#[must_use]
pub fn iteration_seed(run_seed: u64, i: u64) -> u64 {
    splitmix64(run_seed ^ (i.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Deterministically derives one mutant from an iteration seed: picks a
/// corpus base and applies 1–4 byte-level mutations.
#[must_use]
pub fn mutant_for(iter_seed: u64, corpus: &[Vec<u8>], max_len: usize) -> Vec<u8> {
    let mut rng = ConformanceRng::new(iter_seed);
    let mut bytes = rng.pick(corpus).clone();
    let mutations = rng.range(1, 5);
    for _ in 0..mutations {
        match rng.below(6) {
            // Flip one byte.
            0 if !bytes.is_empty() => {
                let at = rng.below(bytes.len() as u64) as usize;
                bytes[at] ^= (rng.below(255) + 1) as u8;
            }
            // Insert a random byte.
            1 => {
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.insert(at, rng.below(256) as u8);
            }
            // Delete a span.
            2 if !bytes.is_empty() => {
                let start = rng.below(bytes.len() as u64) as usize;
                let len = (rng.range(1, 9) as usize).min(bytes.len() - start);
                bytes.drain(start..start + len);
            }
            // Duplicate a span.
            3 if !bytes.is_empty() => {
                let start = rng.below(bytes.len() as u64) as usize;
                let len = (rng.range(1, 9) as usize).min(bytes.len() - start);
                let span: Vec<u8> = bytes[start..start + len].to_vec();
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.splice(at..at, span);
            }
            // Insert a dictionary token.
            4 => {
                let token = rng.pick(DICTIONARY).as_bytes();
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.splice(at..at, token.iter().copied());
            }
            // Splice the head of another corpus entry onto a tail.
            _ => {
                let other = rng.pick(corpus);
                let cut_a = rng.below(bytes.len() as u64 + 1) as usize;
                let cut_b = rng.below(other.len() as u64 + 1) as usize;
                let mut spliced = bytes[..cut_a].to_vec();
                spliced.extend_from_slice(&other[cut_b..]);
                bytes = spliced;
            }
        }
    }
    bytes.truncate(max_len);
    bytes
}

/// Drives the front-end pipeline over one input; returns the panic message
/// if any stage panicked. The pipeline mirrors the server: lossy UTF-8,
/// raw parse, charset decode, decoded parse, lowering, display, reparse.
#[must_use]
pub fn probe(bytes: &[u8]) -> Option<String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let raw = String::from_utf8_lossy(bytes);
        let _ = parse(&raw);
        let decoded = charset::decode(&raw);
        if let Ok(parsed) = parse(&decoded.text) {
            let stack = items::lower_all(&parsed.statements);
            let _ = stack.len();
            for statement in &parsed.statements {
                let _ = parse(&statement.to_string());
            }
        }
    }));
    result.err().map(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// Reference query models the VM differential probes mutants against —
/// trained structures a fuzzed QS is compared to, so the walker and the
/// compiled program exercise all three outcomes (clean, structural,
/// mimicry), not just the self-comparison clean path.
#[must_use]
pub fn reference_models() -> Vec<QueryModel> {
    [
        "SELECT * FROM tickets WHERE reservID = 'train0' AND creditCard = 1",
        "SELECT username, password FROM users WHERE id = 7",
        "SELECT watts FROM readings WHERE device = 'dev-1' AND day BETWEEN 1 AND 7",
        "INSERT INTO tickets (reservID, creditCard, note) VALUES ('ID34FG', 1234, 'ok')",
    ]
    .iter()
    .map(|sql| {
        let parsed = parse(sql).expect("reference SQL parses");
        QueryModel::from_structure(&items::lower_all(&parsed.statements))
    })
    .collect()
}

/// VM differential probe: beyond [`probe`]'s panic check, every parseable
/// mutant must (a) compile to a detection program without panicking, with
/// the VM verdict matching the AST walker against its own model *and*
/// every [`reference_models`] structure, and (b) execute identically on a
/// server with the expression VM on and off. Returns a description of the
/// first divergence (or panic) found.
#[must_use]
pub fn probe_vm(bytes: &[u8]) -> Option<String> {
    if let Some(message) = probe(bytes) {
        return Some(message);
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let raw = String::from_utf8_lossy(bytes);
        let decoded = charset::decode(&raw);
        let Ok(parsed) = parse(&decoded.text) else {
            return None;
        };
        // (a) detection: compile + walker-vs-VM verdict equality.
        let qs = items::lower_all(&parsed.statements);
        let mut models = reference_models();
        models.push(QueryModel::from_structure(&qs));
        for model in &models {
            let program = septic_vm::compile_model(model.items());
            let walker = detect_sqli(&qs, model);
            let vm = detect_sqli_vm(&program, &qs, model);
            if walker != vm {
                return Some(format!("detection divergence: walker={walker:?} vm={vm:?}"));
            }
        }
        // (b) execution: same statements against fresh identical
        // deployments, expression VM on vs off.
        let ast = exec_outcome(&raw, false);
        let vm = exec_outcome(&raw, true);
        if ast != vm {
            return Some(format!("execution divergence:\n  ast: {ast}\n  vm:  {vm}"));
        }
        None
    }));
    match result {
        Ok(divergence) => divergence,
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string()),
        ),
    }
}

/// Runs `sql` against a fresh conformance-schema server with the
/// expression VM forced to `vm`, rendered to a comparable string.
fn exec_outcome(sql: &str, vm: bool) -> String {
    let server = Server::with_config(ServerConfig {
        allow_multi_statements: true,
        general_log_capacity: 0,
    });
    server.set_expr_vm(vm);
    let conn = server.connect();
    crate::differential::create_schema(&conn);
    match conn.execute(sql) {
        Ok(result) => {
            let outputs: Vec<String> = result
                .outputs
                .iter()
                .map(|o| {
                    format!(
                        "cols={:?} rows={:?} affected={} last_id={:?} sleep={}",
                        o.columns, o.rows, o.affected, o.last_insert_id, o.effects.sleep_seconds
                    )
                })
                .collect();
            format!("ok: {}", outputs.join(" | "))
        }
        Err(e) => format!("err: {e}"),
    }
}

/// Greedy minimizer: repeatedly removes chunks (halving chunk size down to
/// one byte) while `still_fails` holds, until a fixpoint.
pub fn shrink(input: &[u8], still_fails: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut current = input.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = current[..start].to_vec();
            candidate.extend_from_slice(&current[end..]);
            if still_fails(&candidate) {
                current = candidate;
                progressed = true;
                continue; // same start: the next chunk shifted into place
            }
            start = end;
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

/// Runs the harness. Zero failures is the pass condition; any failure
/// carries its iteration seed for standalone reproduction.
#[must_use]
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_with(config, probe)
}

/// [`run_fuzz`] with a caller-chosen probe — the VM differential run uses
/// [`probe_vm`]. Failing inputs are minimized against the same probe, so
/// a divergence shrinks to a minimal still-divergent program.
pub fn run_fuzz_with(
    config: &FuzzConfig,
    probe_fn: impl Fn(&[u8]) -> Option<String>,
) -> FuzzReport {
    let corpus = seed_corpus();
    let mut failures = Vec::new();
    for i in 0..config.iterations {
        let iter_seed = iteration_seed(config.seed, i);
        let mutant = mutant_for(iter_seed, &corpus, config.max_len);
        if let Some(message) = probe_fn(&mutant) {
            let minimized = shrink(&mutant, |candidate| probe_fn(candidate).is_some());
            failures.push(FuzzFailure {
                iteration: i,
                seed: iter_seed,
                input: mutant,
                minimized,
                message,
            });
        }
    }
    FuzzReport {
        iterations: config.iterations,
        corpus_size: corpus.len(),
        failures,
    }
}

/// Renders failures the way the test prints them: everything needed to
/// reproduce without the corpus file.
#[must_use]
pub fn describe_failures(report: &FuzzReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for f in &report.failures {
        let _ = writeln!(
            out,
            "iteration {} seed {:#018x}: {}\n  input     {:?}\n  minimized {:?}",
            f.iteration,
            f.seed,
            f.message,
            String::from_utf8_lossy(&f.input),
            String::from_utf8_lossy(&f.minimized),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_reproduce_from_iteration_seed() {
        let corpus = seed_corpus();
        for i in 0..50 {
            let seed = iteration_seed(FUZZ_SEED, i);
            assert_eq!(
                mutant_for(seed, &corpus, 256),
                mutant_for(seed, &corpus, 256),
                "iteration {i}"
            );
        }
    }

    #[test]
    fn shrinker_minimizes_against_a_synthetic_predicate() {
        // Failure condition: contains both `'` and `;`.
        let fails = |b: &[u8]| b.contains(&b'\'') && b.contains(&b';');
        let input = b"SELECT a FROM t WHERE a = 'x'; DROP TABLE t".to_vec();
        let minimized = shrink(&input, fails);
        assert!(fails(&minimized));
        assert_eq!(
            minimized.len(),
            2,
            "{:?}",
            String::from_utf8_lossy(&minimized)
        );
    }

    #[test]
    fn shrinker_keeps_failing_input_when_nothing_removable() {
        let fails = |b: &[u8]| b == b"ab";
        assert_eq!(shrink(b"ab", fails), b"ab".to_vec());
    }

    #[test]
    fn probe_accepts_benign_sql_and_garbage() {
        assert_eq!(probe(b"SELECT 1"), None);
        assert_eq!(probe(b"\xff\xfe\x00'\"`"), None);
        assert_eq!(probe(b""), None);
    }

    #[test]
    fn quick_fuzz_run_is_clean_and_deterministic() {
        let config = FuzzConfig {
            iterations: 300,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&config);
        assert!(a.failures.is_empty(), "{}", describe_failures(&a));
        let b = run_fuzz(&config);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
