//! Metamorphic oracles over the semantic-mismatch transformations.
//!
//! The mismatch thesis (DESIGN.md, paper §II-B): a defense is bypassable
//! exactly when it reads a query differently from the DBMS. The oracles
//! here pin the *DBMS side* of that equation: transformations MySQL treats
//! as equivalent for benign queries — homoglyph quotes folded by the
//! connection charset, inline comments, whitespace runs, keyword/identifier
//! case — must never change the learned query model (QM); and the
//! transformations MySQL does **not** treat as equivalent (numeric-string
//! coercion across the `12` / `'12'` type boundary) must stay visible to
//! the detector as a node-type mismatch.
//!
//! The second family asserts QS extraction is a **fixpoint**:
//! parse → display → parse yields an identical item stack, so the printed
//! form of a query is a faithful carrier of its structure.

use septic::QueryModel;
use septic_sql::items::ItemStack;
use septic_sql::{charset, items, parse};

use crate::rng::ConformanceRng;

/// Lexical region of a SQL text, tracked by the mutators so string-literal
/// *content* and comment bodies are never touched (mutating those is the
/// attack space, not the equivalence space).
#[derive(Clone, Copy, PartialEq)]
enum Region {
    Normal,
    InString,
    InComment,
}

/// Walks `sql` and rebuilds it, passing each character in normal (outside
/// string/comment) position to `f`, which pushes its replacement. String
/// and comment characters — including their delimiters — are copied
/// verbatim. Handles `\x` escapes and doubled `''` inside strings.
fn map_normal_chars(sql: &str, mut f: impl FnMut(char, &mut String)) -> String {
    let chars: Vec<char> = sql.chars().collect();
    let mut out = String::with_capacity(sql.len() + 16);
    let mut region = Region::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match region {
            Region::Normal => {
                if c == '\'' {
                    region = Region::InString;
                    out.push(c);
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    region = Region::InComment;
                    out.push_str("/*");
                    i += 1;
                } else {
                    f(c, &mut out);
                }
            }
            Region::InString => {
                if c == '\\' {
                    out.push(c);
                    if let Some(&next) = chars.get(i + 1) {
                        out.push(next);
                        i += 1;
                    }
                } else if c == '\'' {
                    if chars.get(i + 1) == Some(&'\'') {
                        out.push_str("''");
                        i += 1;
                    } else {
                        region = Region::Normal;
                        out.push(c);
                    }
                } else {
                    out.push(c);
                }
            }
            Region::InComment => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    region = Region::Normal;
                    out.push_str("*/");
                    i += 1;
                } else {
                    out.push(c);
                }
            }
        }
        i += 1;
    }
    out
}

/// Homoglyphs the connection charset folds back to `'` ([`charset::decode`]).
const QUOTE_HOMOGLYPHS: [char; 4] = ['\u{02BC}', '\u{2019}', '\u{FF07}', '\u{2032}'];

/// Replaces every ASCII quote delimiter with a random homoglyph that
/// decodes back to `'` — the U+02BC transformation of the paper, applied
/// benignly: after [`charset::decode`] the query is identical.
pub fn requote_with_homoglyphs(sql: &str, rng: &mut ConformanceRng) -> String {
    // Quote delimiters sit at Normal→InString boundaries; map_normal_chars
    // copies them verbatim, so substitute on the raw text instead and rely
    // on every ASCII `'` in a benign query being a delimiter or its close.
    sql.chars()
        .map(|c| {
            if c == '\'' {
                *rng.pick(&QUOTE_HOMOGLYPHS)
            } else {
                c
            }
        })
        .collect()
}

/// Inserts `/* … */` inline comments at token boundaries (spaces outside
/// strings/comments). MySQL strips them during lexing; WAF regexes keyed
/// on `\s` do not.
pub fn insert_inline_comments(sql: &str, rng: &mut ConformanceRng) -> String {
    let mut r = rng.clone();
    let out = map_normal_chars(sql, |c, out| {
        if c == ' ' && r.chance(50) {
            let w = r.benign_word(0, 4);
            out.push_str(" /*");
            out.push_str(&w);
            out.push_str("*/ ");
        } else {
            out.push(c);
        }
    });
    *rng = r;
    out
}

/// Replaces single spaces (outside strings/comments) with 1–3 random
/// whitespace characters (space, tab, newline).
pub fn mutate_whitespace(sql: &str, rng: &mut ConformanceRng) -> String {
    let mut r = rng.clone();
    let out = map_normal_chars(sql, |c, out| {
        if c == ' ' {
            for _ in 0..r.range(1, 4) {
                out.push(*r.pick(&[' ', '\t', '\n']));
            }
        } else {
            out.push(c);
        }
    });
    *rng = r;
    out
}

/// Randomly flips the ASCII case of keywords and identifiers (outside
/// strings/comments). MySQL keywords are case-insensitive and the lowering
/// canonicalises identifier case.
pub fn mutate_case(sql: &str, rng: &mut ConformanceRng) -> String {
    let mut r = rng.clone();
    let out = map_normal_chars(sql, |c, out| {
        if c.is_ascii_alphabetic() && r.coin() {
            if c.is_ascii_lowercase() {
                out.push(c.to_ascii_uppercase());
            } else {
                out.push(c.to_ascii_lowercase());
            }
        } else {
            out.push(c);
        }
    });
    *rng = r;
    out
}

/// QS of a raw query as the server front end computes it (charset decode,
/// parse, lower).
///
/// # Panics
///
/// Panics when the query does not parse — oracle inputs are benign by
/// construction.
#[must_use]
pub fn qs_of(raw_sql: &str) -> ItemStack {
    let decoded = charset::decode(raw_sql);
    let parsed = parse(&decoded.text).expect("oracle query must parse");
    items::lower_all(&parsed.statements)
}

/// Learned QM of a raw query.
#[must_use]
pub fn qm_of(raw_sql: &str) -> QueryModel {
    QueryModel::from_structure(&qs_of(raw_sql))
}

/// Reprints a parsed query from its AST (multi-statement queries joined
/// with `; `).
#[must_use]
pub fn reprint(raw_sql: &str) -> String {
    let decoded = charset::decode(raw_sql);
    let parsed = parse(&decoded.text).expect("reprint input must parse");
    parsed
        .statements
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

/// The QS fixpoint relation: parse → display → parse preserves the item
/// stack exactly.
#[must_use]
pub fn qs_is_fixpoint(raw_sql: &str) -> bool {
    qs_of(raw_sql) == qs_of(&reprint(raw_sql))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_normal_chars_skips_strings_and_comments() {
        let sql = "SELECT a /* keep me */ FROM t WHERE a = 'it''s x' AND b = 'c\\' d'";
        let upper = map_normal_chars(sql, |c, out| out.push(c.to_ascii_uppercase()));
        assert!(upper.contains("keep me"), "{upper}");
        assert!(upper.contains("it''s x"), "{upper}");
        assert!(upper.contains("c\\' d"), "{upper}");
        assert!(upper.starts_with("SELECT A"), "{upper}");
    }

    #[test]
    fn requote_substitutes_all_ascii_quotes() {
        let mut rng = ConformanceRng::new(1);
        let out = requote_with_homoglyphs("WHERE a = 'x' AND b = 'y'", &mut rng);
        assert!(!out.contains('\''));
        assert_eq!(charset::decode(&out).text, "WHERE a = 'x' AND b = 'y'");
    }

    #[test]
    fn comment_insertion_keeps_queries_parseable() {
        let mut rng = ConformanceRng::new(2);
        for _ in 0..20 {
            let sql = "SELECT a, b FROM t WHERE a = 'x' AND b = 2 ORDER BY a LIMIT 3";
            let mutated = insert_inline_comments(sql, &mut rng);
            parse(&mutated).expect("still parses");
        }
    }
}
