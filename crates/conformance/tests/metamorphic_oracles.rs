//! Metamorphic oracles for the SEPTIC learning pipeline.
//!
//! Each oracle applies a semantics-preserving transformation to a benign
//! query and asserts that the learned query model (QM) — the structure
//! SEPTIC trains on — is unchanged. A mutation that *did* change the QM
//! would make training non-robust: the same application query observed
//! through a different client encoding would re-train as a new model.
//!
//! The final oracle asserts query-structure (QS) extraction is a fixpoint
//! under parse → display → parse: pretty-printing a query and re-ingesting
//! it yields the identical item stack.

use septic_conformance::grammar::{generate_cases, Case};
use septic_conformance::metamorphic::{
    insert_inline_comments, mutate_case, mutate_whitespace, qm_of, qs_is_fixpoint,
    requote_with_homoglyphs,
};
use septic_conformance::rng::ConformanceRng;

const ORACLE_SEED: u64 = 0xBE9169;

fn benign_cases() -> Vec<Case> {
    let cases: Vec<Case> = generate_cases(ORACLE_SEED)
        .into_iter()
        .filter(|c| c.class.is_none())
        .collect();
    assert!(!cases.is_empty(), "generator produced no benign cases");
    cases
}

/// U+02BC (and friends): requoting a benign query with Unicode homoglyph
/// quotes must not change its learned model — charset folding maps the
/// homoglyphs back to ASCII `'` before structure extraction.
#[test]
fn homoglyph_requoting_preserves_the_query_model() {
    let mut rng = ConformanceRng::new(ORACLE_SEED);
    for case in benign_cases() {
        let baseline = qm_of(&case.sql);
        for _ in 0..4 {
            let mutated = requote_with_homoglyphs(&case.sql, &mut rng);
            assert_eq!(
                baseline,
                qm_of(&mutated),
                "homoglyph requote changed the QM of {}:\n  before: {}\n  after:  {mutated}",
                case.id,
                case.sql
            );
        }
    }
}

/// Inline `/*word*/` comments in token gaps are whitespace to the lexer:
/// the model must not change.
#[test]
fn inline_comment_insertion_preserves_the_query_model() {
    let mut rng = ConformanceRng::new(ORACLE_SEED ^ 1);
    for case in benign_cases() {
        let baseline = qm_of(&case.sql);
        for _ in 0..4 {
            let mutated = insert_inline_comments(&case.sql, &mut rng);
            assert_eq!(
                baseline,
                qm_of(&mutated),
                "comment insertion changed the QM of {}:\n  before: {}\n  after:  {mutated}",
                case.id,
                case.sql
            );
        }
    }
}

/// Whitespace churn (tabs, newlines, repeated spaces) between tokens is
/// invisible to structure extraction.
#[test]
fn whitespace_mutation_preserves_the_query_model() {
    let mut rng = ConformanceRng::new(ORACLE_SEED ^ 2);
    for case in benign_cases() {
        let baseline = qm_of(&case.sql);
        for _ in 0..4 {
            let mutated = mutate_whitespace(&case.sql, &mut rng);
            assert_eq!(
                baseline,
                qm_of(&mutated),
                "whitespace mutation changed the QM of {}:\n  before: {}\n  after:  {mutated}",
                case.id,
                case.sql
            );
        }
    }
}

/// Keyword and identifier case outside strings is free in MySQL; the
/// model must be case-insensitive to it.
#[test]
fn keyword_case_mutation_preserves_the_query_model() {
    let mut rng = ConformanceRng::new(ORACLE_SEED ^ 3);
    for case in benign_cases() {
        let baseline = qm_of(&case.sql);
        for _ in 0..4 {
            let mutated = mutate_case(&case.sql, &mut rng);
            assert_eq!(
                baseline,
                qm_of(&mutated),
                "case mutation changed the QM of {}:\n  before: {}\n  after:  {mutated}",
                case.id,
                case.sql
            );
        }
    }
}

/// Numeric-string coercion, both halves of the oracle:
///
/// - spellings of the *same* literal type (`7`, `007`, `+0 7` padding)
///   train to the same model — the payload is blanked, only the tag stays;
/// - coercion *across* types (`12` → `12.0`, `7` → `'7'`) changes the
///   model, because the item tag (`INT_ITEM` / `REAL_ITEM` /
///   `STRING_ITEM`) is structure, not data. MySQL would silently coerce
///   these at execution time; the model seeing the difference is exactly
///   what makes syntax-mimicry attacks detectable.
#[test]
fn numeric_coercion_is_visible_to_the_model_but_spelling_is_not() {
    let sql = |lit: &str| format!("SELECT watts FROM readings WHERE day = {lit}");
    for (a, b) in [("7", "007"), ("12", "0012"), ("1.5", "1.50")] {
        assert_eq!(
            qm_of(&sql(a)),
            qm_of(&sql(b)),
            "same-type spellings {a} vs {b} trained different models"
        );
    }
    for (a, b) in [("12", "12.0"), ("7", "'7'"), ("1.5", "'1.5'")] {
        assert_ne!(
            qm_of(&sql(a)),
            qm_of(&sql(b)),
            "cross-type coercion {a} vs {b} must change the model"
        );
    }
}

/// QS extraction is a fixpoint: parse → display → parse yields the same
/// item stack, for every benign case and every homoglyph-requoted variant.
#[test]
fn qs_extraction_is_a_fixpoint_under_reprinting() {
    let mut rng = ConformanceRng::new(ORACLE_SEED ^ 4);
    for case in benign_cases() {
        assert!(
            qs_is_fixpoint(&case.sql),
            "reprinting changed the QS of {}: {}",
            case.id,
            case.sql
        );
        let requoted = requote_with_homoglyphs(&case.sql, &mut rng);
        assert!(
            qs_is_fixpoint(&requoted),
            "reprinting changed the QS of requoted {}: {requoted}",
            case.id
        );
    }
}

/// Composed mutations: the oracles hold when the transformations stack.
#[test]
fn composed_mutations_preserve_the_query_model() {
    let mut rng = ConformanceRng::new(ORACLE_SEED ^ 5);
    for case in benign_cases() {
        let baseline = qm_of(&case.sql);
        let mutated = mutate_case(
            &mutate_whitespace(
                &insert_inline_comments(&requote_with_homoglyphs(&case.sql, &mut rng), &mut rng),
                &mut rng,
            ),
            &mut rng,
        );
        assert_eq!(
            baseline,
            qm_of(&mutated),
            "composed mutation changed the QM of {}:\n  before: {}\n  after:  {mutated}",
            case.id,
            case.sql
        );
    }
}
