//! Deterministic fuzz run for the bytecode-VM compilers, wired into
//! `cargo test`: every parseable mutant must compile to a detection
//! program without panicking, the VM verdict must match the AST walker
//! against its own and every reference model, and execution on a server
//! with the expression VM on must match execution with it off.
//!
//! The default budget is 2 000 seeded iterations (each one deploys two
//! servers); CI scales it with `SEPTIC_FUZZ_ITERS`, and divergences
//! shrink to a minimal still-divergent input exactly like parser-fuzz
//! panics do.

use septic_conformance::fuzz::{describe_failures, probe_vm, run_fuzz_with, FuzzConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

#[test]
fn fuzz_vm_compilers_never_panic_or_diverge() {
    let config = FuzzConfig {
        seed: env_u64("SEPTIC_FUZZ_SEED", FuzzConfig::default().seed),
        iterations: env_u64("SEPTIC_FUZZ_ITERS", 2_000),
        ..FuzzConfig::default()
    };
    let report = run_fuzz_with(&config, probe_vm);
    assert_eq!(report.iterations, config.iterations);
    assert!(
        report.failures.is_empty(),
        "{} VM divergence(s)/panic(s) in {} iterations (seed {:#018x}):\n{}",
        report.failures.len(),
        report.iterations,
        config.seed,
        describe_failures(&report)
    );
}
