//! Telemetry-vs-golden cross-check: the attack totals scraped from the
//! metrics registry must agree with the golden detection matrix.
//!
//! Every conformance case runs against a fresh prevention-mode deployment
//! via [`run_case_instrumented`]; the deployment's scraped
//! `septic_attacks_total` is therefore that case's own detection count.
//! Summed over all cases it must equal the number of `blocked` cells in
//! the golden matrix's `septic_prevention` column — if the registry ever
//! under- or over-counts (the bug class `Logger::attack_count()` had),
//! this test catches it against reviewed ground truth.

use septic_conformance::differential::{
    run_case_instrumented, Defense, DetectionMatrix, Verdict, MATRIX_SEED,
};
use septic_conformance::golden::golden_path;
use septic_conformance::grammar::generate_cases;
use septic_telemetry::parse_prometheus;

fn load_golden() -> DetectionMatrix {
    let path = golden_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden",
            path.display()
        )
    });
    serde_json::from_str(&text).expect("golden matrix parses")
}

#[test]
fn scraped_attack_totals_match_golden_blocked_count() {
    let golden = load_golden();
    let expected_blocked = golden
        .cases
        .iter()
        .filter(|c| c.septic_prevention == Verdict::Blocked.label())
        .count() as u64;
    assert!(expected_blocked > 0, "golden matrix must contain attacks");

    let mut blocked = 0u64;
    let mut scraped_attacks = 0u64;
    for case in generate_cases(MATRIX_SEED) {
        let (verdict, snapshot) = run_case_instrumented(&case, Defense::SepticPrevention);
        let snapshot = snapshot.expect("prevention mode installs a guard");
        let attacks = snapshot
            .counter("septic_attacks_total")
            .expect("attacks counter registered");
        // Per fresh deployment the mapping is exact: one blocked query is
        // one detection, anything else is zero.
        match verdict {
            Verdict::Blocked => assert_eq!(attacks, 1, "case {}", case.id),
            _ => assert_eq!(attacks, 0, "case {} verdict {verdict:?}", case.id),
        }
        blocked += u64::from(verdict == Verdict::Blocked);
        scraped_attacks += attacks;
    }

    assert_eq!(
        blocked, expected_blocked,
        "prevention verdicts drifted from the golden matrix"
    );
    assert_eq!(
        scraped_attacks, expected_blocked,
        "septic_attacks_total disagrees with the golden matrix's blocked count"
    );
}

#[test]
fn prometheus_export_agrees_with_snapshot_for_a_blocked_case() {
    let golden = load_golden();
    let blocked_id = &golden
        .cases
        .iter()
        .find(|c| c.septic_prevention == Verdict::Blocked.label())
        .expect("golden matrix has a blocked case")
        .id;
    let case = generate_cases(MATRIX_SEED)
        .into_iter()
        .find(|c| &c.id == blocked_id)
        .expect("generated cases include the golden case");
    let (verdict, snapshot) = run_case_instrumented(&case, Defense::SepticPrevention);
    assert_eq!(verdict, Verdict::Blocked);
    let snapshot = snapshot.expect("guard installed");
    let series = parse_prometheus(&snapshot.to_prometheus()).expect("export parses");
    assert_eq!(series.get("septic_attacks_total").copied(), Some(1.0));
    assert_eq!(snapshot.counter("septic_attacks_total"), Some(1));
}
