//! Golden detection-matrix test: regenerates the matrix from the fixed
//! seed and compares it byte-for-byte against the checked-in golden file.
//!
//! To accept an intentional change:
//!
//! ```text
//! SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden
//! ```

use septic_conformance::differential::{
    build_matrix, canonical_json, DetectionMatrix, Verdict, MATRIX_SEED,
};
use septic_conformance::golden::{diff_report, golden_path, matrix_diff_report, regen_requested};
use septic_conformance::grammar::Construct;

#[test]
fn matrix_generation_is_byte_deterministic() {
    let a = canonical_json(&build_matrix(MATRIX_SEED));
    let b = canonical_json(&build_matrix(MATRIX_SEED));
    assert_eq!(a, b, "two builds from the same seed must be byte-identical");
}

#[test]
fn matrix_matches_golden() {
    let path = golden_path();
    let actual = canonical_json(&build_matrix(MATRIX_SEED));
    if regen_requested() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden",
            path.display()
        )
    });
    if expected != actual {
        // Prefer the semantic per-case report (construct family + drifted
        // defense columns); fall back to the raw line diff only when the
        // checked-in golden no longer parses as a matrix.
        let diff = match serde_json::from_str::<DetectionMatrix>(&expected) {
            Ok(golden) => {
                let built = build_matrix(MATRIX_SEED);
                matrix_diff_report(&golden, &built, 20)
                    .or_else(|| diff_report(&expected, &actual, 20))
            }
            Err(_) => diff_report(&expected, &actual, 20),
        }
        .unwrap_or_else(|| "files differ only in canonical formatting\n".to_string());
        panic!(
            "detection matrix drifted from the golden file.\n{diff}\
             If the change is intentional, regenerate with \
             SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden \
             and commit the diff."
        );
    }
}

#[test]
fn matrix_has_required_shape() {
    let matrix = build_matrix(MATRIX_SEED);
    assert!(
        matrix.cases.len() >= 120,
        "matrix must hold at least 120 cases, got {}",
        matrix.cases.len()
    );
    assert_eq!(matrix.defenses.len(), 5, "five defense columns");
    for construct in Construct::all() {
        let label = construct.label();
        assert!(
            matrix.cases.iter().any(|c| c.construct == label),
            "construct family {label} missing from the matrix"
        );
    }
    // The grown grammar's headline families must be present, and each new
    // construct must contribute at least one attack SEPTIC prevention
    // blocks end-to-end.
    for class in ["subquery-union", "aggregate-mimicry", "join-piggyback"] {
        assert!(
            matrix.cases.iter().any(|c| c.class == class),
            "attack class {class} missing from the matrix"
        );
    }
    for construct in ["join", "group-by", "subquery"] {
        assert!(
            matrix
                .cases
                .iter()
                .any(|c| c.construct == construct && c.septic_prevention == "blocked"),
            "no blocked attack for construct {construct}"
        );
    }
}

#[test]
fn no_defense_flags_a_benign_case() {
    let matrix = build_matrix(MATRIX_SEED);
    for case in matrix.cases.iter().filter(|c| c.class == "benign") {
        for (defense, verdict) in [
            ("sanitize-only", &case.sanitize_only),
            ("waf", &case.waf),
            ("septic-detection", &case.septic_detection),
            ("septic-prevention", &case.septic_prevention),
            ("septic-structural", &case.septic_structural),
        ] {
            assert_eq!(
                verdict,
                Verdict::Passed.label(),
                "benign case {} must pass {defense}, got {verdict}",
                case.id
            );
        }
    }
}

#[test]
fn septic_prevention_stops_every_harmful_case() {
    let matrix = build_matrix(MATRIX_SEED);
    for case in matrix.cases.iter().filter(|c| c.harmful) {
        assert_ne!(
            case.septic_prevention,
            Verdict::Passed.label(),
            "harmful case {} slipped through SEPTIC prevention (payload: {})",
            case.id,
            case.payload
        );
    }
}

#[test]
fn matrix_summarizes_every_class_in_generation_order() {
    let matrix = build_matrix(MATRIX_SEED);
    let mut classes_seen = Vec::new();
    for case in &matrix.cases {
        if !classes_seen.contains(&case.class) {
            classes_seen.push(case.class.clone());
        }
    }
    let summary_classes: Vec<String> = matrix.summary.iter().map(|r| r.class.clone()).collect();
    assert_eq!(summary_classes, classes_seen);
    let total: u32 = matrix.summary.iter().map(|r| r.cases).sum();
    assert_eq!(total as usize, matrix.cases.len());
}
