//! Deterministic fuzz run for the SQL front end, wired into `cargo test`.
//!
//! The default budget is 10 000 seeded iterations; CI can scale it with
//! `SEPTIC_FUZZ_ITERS`. The run seed can be overridden with
//! `SEPTIC_FUZZ_SEED` to replay an alternative universe. Any panic fails
//! the test and prints the iteration seed plus the minimized input, which
//! reproduce the failure without any stored corpus.

use septic_conformance::fuzz::{describe_failures, run_fuzz, FuzzConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

#[test]
fn fuzz_sql_frontend_never_panics() {
    let config = FuzzConfig {
        seed: env_u64("SEPTIC_FUZZ_SEED", FuzzConfig::default().seed),
        iterations: env_u64("SEPTIC_FUZZ_ITERS", FuzzConfig::default().iterations),
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&config);
    assert_eq!(report.iterations, config.iterations);
    assert!(
        report.failures.is_empty(),
        "{} panic(s) in {} iterations (seed {:#018x}):\n{}",
        report.failures.len(),
        report.iterations,
        config.seed,
        describe_failures(&report)
    );
}
