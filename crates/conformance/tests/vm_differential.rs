//! Differential safety net for the bytecode VM: the golden detection
//! matrix must be **byte-identical** with the VM hot loops forced on and
//! forced off — the VM is an execution strategy, never an observable.
//!
//! This is the conformance-level guarantee behind flipping the default to
//! the VM: every case of every class runs through the full stack twice
//! (compiled programs vs AST walkers) and the verdicts must agree cell by
//! cell with each other and with the checked-in golden file.

use septic_conformance::differential::{
    build_matrix_vm, canonical_json, execution_outcome, run_case_vm, Defense, MATRIX_SEED,
};
use septic_conformance::golden::{diff_report, golden_path};
use septic_conformance::grammar::{generate_cases, templates, Construct};

#[test]
fn matrix_is_byte_identical_with_vm_on_and_off() {
    let with_vm = canonical_json(&build_matrix_vm(MATRIX_SEED, Some(true)));
    let without_vm = canonical_json(&build_matrix_vm(MATRIX_SEED, Some(false)));
    if let Some(diff) = diff_report(&without_vm, &with_vm, 20) {
        panic!("bytecode VM changed the detection matrix:\n{diff}");
    }
}

#[test]
fn matrix_with_vm_on_matches_golden() {
    let path = golden_path();
    let actual = canonical_json(&build_matrix_vm(MATRIX_SEED, Some(true)));
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             SEPTIC_CONFORMANCE_REGEN=1 cargo test -p septic-conformance golden",
            path.display()
        )
    });
    if let Some(diff) = diff_report(&expected, &actual, 20) {
        panic!("VM-enabled matrix drifted from the golden file:\n{diff}");
    }
}

#[test]
fn every_case_verdict_agrees_between_vm_and_walker() {
    // Cell-level agreement on the defenses that run the SEPTIC detectors
    // and the DBMS executor — the two loops the VM replaced.
    for case in generate_cases(MATRIX_SEED) {
        for defense in Defense::all() {
            let walker = run_case_vm(&case, defense, Some(false));
            let vm = run_case_vm(&case, defense, Some(true));
            assert_eq!(
                walker,
                vm,
                "case {} under {}: walker={walker:?} vm={vm:?}",
                case.id,
                defense.label()
            );
        }
    }
}

#[test]
fn every_case_execution_outcome_agrees_between_vm_and_walker() {
    // Stronger than verdict agreement: the actual result sets (columns,
    // rows, or the error) must match cell-for-cell with the VM on and
    // off. The JOIN/GROUP BY/subquery templates route through the VM's
    // negative cache to the interpreted walker, so this pins the fallback
    // path to the same semantics.
    let mut construct_cases = 0;
    for case in generate_cases(MATRIX_SEED) {
        let walker = execution_outcome(&case, false);
        let vm = execution_outcome(&case, true);
        assert_eq!(
            walker, vm,
            "case {}: walker and VM outcomes differ",
            case.id
        );
        if case.construct != Construct::Basic {
            construct_cases += 1;
        }
    }
    assert!(
        construct_cases > 0,
        "the sweep must cover the JOIN/GROUP BY/subquery templates"
    );
    // And every new-construct template is individually represented.
    for t in templates()
        .iter()
        .filter(|t| t.construct != Construct::Basic)
    {
        assert!(
            generate_cases(MATRIX_SEED)
                .iter()
                .any(|c| c.template == t.name),
            "template {} has no generated cases",
            t.name
        );
    }
}
