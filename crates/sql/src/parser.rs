//! Recursive-descent parser for the MySQL dialect subset.
//!
//! The grammar follows MySQL's operator precedence:
//! `OR` < `XOR` < `AND` < `NOT` < comparison/`LIKE`/`IN`/`BETWEEN`/`IS`
//! < `|` < `&` < shift < additive < multiplicative < unary < primary.

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::token::{lex, LexOutput, SpannedToken, Token};

/// A parsed query: the statement list plus lexer side-channel data.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The statements (`;`-separated). Injection-crafted piggyback queries
    /// arrive as multiple statements.
    pub statements: Vec<Statement>,
    /// Block-comment bodies (SEPTIC external identifiers live here).
    pub comments: Vec<String>,
    /// Whether a line comment swallowed the tail of the query.
    pub trailing_line_comment: bool,
}

impl Parsed {
    /// The single statement of a non-piggybacked query.
    #[must_use]
    pub fn single(&self) -> Option<&Statement> {
        if self.statements.len() == 1 {
            self.statements.first()
        } else {
            None
        }
    }
}

/// Parses one or more `;`-separated statements.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical errors, grammar violations, or
/// recognised-but-unsupported statements.
///
/// # Examples
///
/// ```
/// use septic_sql::parse;
///
/// let parsed = parse("SELECT * FROM tickets WHERE reservID = 'ID34FG'")?;
/// assert_eq!(parsed.statements.len(), 1);
/// # Ok::<(), septic_sql::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Parsed, ParseError> {
    let LexOutput {
        tokens,
        comments,
        trailing_line_comment,
    } = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    loop {
        while parser.eat_token(&Token::Semicolon) {}
        if parser.at_end() {
            break;
        }
        statements.push(parser.statement()?);
        if !parser.at_end() && !parser.check_token(&Token::Semicolon) {
            return Err(parser.unexpected("`;` or end of query"));
        }
    }
    if statements.is_empty() {
        return Err(ParseError::syntax("empty query", Span::default()));
    }
    Ok(Parsed {
        statements,
        comments,
        trailing_line_comment,
    })
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or_else(Span::default, |t| t.span)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn check_token(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.check_token(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn check_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.check_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        let found = self
            .peek()
            .map_or_else(|| "end of query".to_string(), |t| format!("`{t}`"));
        ParseError::syntax(format!("expected {what}, found {found}"), self.span())
    }

    fn identifier(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.advance() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!("peeked ident"),
            },
            Some(Token::QuotedIdent(_)) => match self.advance() {
                Some(Token::QuotedIdent(s)) => Ok(s),
                _ => unreachable!("peeked quoted ident"),
            },
            _ => Err(self.unexpected(what)),
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.check_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.check_kw("INSERT") {
            self.insert()
        } else if self.check_kw("UPDATE") {
            self.update()
        } else if self.check_kw("DELETE") {
            self.delete()
        } else if self.check_kw("CREATE") {
            self.create_table()
        } else if self.check_kw("DROP") {
            self.drop_table()
        } else if self.eat_kw("BEGIN") {
            Ok(Statement::Begin)
        } else if self.eat_kw("START") {
            self.expect_kw("TRANSACTION")?;
            Ok(Statement::Begin)
        } else if self.eat_kw("COMMIT") {
            Ok(Statement::Commit)
        } else if self.eat_kw("ROLLBACK") {
            Ok(Statement::Rollback)
        } else if let Some(Token::Ident(kw)) = self.peek() {
            Err(ParseError::Unsupported {
                message: format!("statement `{}`", kw.to_uppercase()),
            })
        } else {
            Err(self.unexpected("a statement"))
        }
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("SELECT")?;
        let mut select = Select::new();
        select.distinct = self.eat_kw("DISTINCT");
        if !select.distinct {
            self.eat_kw("ALL");
        }
        loop {
            select.items.push(self.select_item()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            loop {
                select.from.push(self.table_ref()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            loop {
                let kind = if self.check_kw("JOIN") || self.check_kw("INNER") {
                    self.eat_kw("INNER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.check_kw("LEFT") {
                    self.pos += 1;
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if self.eat_kw("ON") {
                    Some(self.expr()?)
                } else {
                    None
                };
                select.joins.push(Join { kind, table, on });
            }
        }
        if self.eat_kw("WHERE") {
            select.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                select.group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            select.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                select.order_by.push(OrderBy { expr, descending });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            select.limit = Some(self.limit()?);
        }
        if self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            if !all {
                self.eat_kw("DISTINCT");
            }
            let next = self.select()?;
            select.union = Some((all, Box::new(next)));
        }
        Ok(select)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Some(Token::Ident(name)), Some(t1), Some(t2)) = (
            self.peek(),
            self.tokens.get(self.pos + 1).map(|t| &t.token),
            self.tokens.get(self.pos + 2).map(|t| &t.token),
        ) {
            if *t1 == Token::Dot && *t2 == Token::Star {
                let table = name.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(table));
            }
        }
        let expr = self.expr()?;
        let has_alias = self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s));
        let alias = if has_alias {
            Some(self.identifier("alias")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut name = self.identifier("table name")?;
        // Schema-qualified name (`information_schema.tables`): keep the
        // full dotted form as the table name.
        if self.eat_token(&Token::Dot) {
            let table = self.identifier("table name")?;
            name = format!("{name}.{table}");
        }
        let has_alias = self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s) && !is_join_keyword(s));
        let alias = if has_alias {
            Some(self.identifier("alias")?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn limit(&mut self) -> Result<Limit, ParseError> {
        let first = self.limit_number()?;
        if self.eat_token(&Token::Comma) {
            let count = self.limit_number()?;
            Ok(Limit {
                offset: first,
                count,
            })
        } else if self.eat_kw("OFFSET") {
            let offset = self.limit_number()?;
            Ok(Limit {
                count: first,
                offset,
            })
        } else {
            Ok(Limit {
                count: first,
                offset: 0,
            })
        }
    }

    fn limit_number(&mut self) -> Result<u64, ParseError> {
        match self.advance() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as u64),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.unexpected("a non-negative integer"))
            }
        }
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INSERT")?;
        self.eat_kw("IGNORE");
        self.expect_kw("INTO")?;
        let table = self.identifier("table name")?;
        let mut columns = Vec::new();
        if self.eat_token(&Token::LParen) {
            loop {
                columns.push(self.identifier("column name")?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen, "`)`")?;
        }
        let source = if self.eat_kw("VALUES") || self.eat_kw("VALUE") {
            let mut rows = Vec::new();
            loop {
                self.expect_token(&Token::LParen, "`(`")?;
                let mut row = Vec::new();
                if !self.check_token(&Token::RParen) {
                    loop {
                        row.push(self.expr()?);
                        if !self.eat_token(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect_token(&Token::RParen, "`)`")?;
                rows.push(row);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.check_kw("SELECT") {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(self.unexpected("VALUES or SELECT"));
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("UPDATE")?;
        let table = self.identifier("table name")?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier("column name")?;
            self.expect_token(&Token::Eq, "`=`")?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.limit()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
            limit,
        }))
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.identifier("table name")?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.limit()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
            limit,
        }))
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier("table name")?;
        self.expect_token(&Token::LParen, "`(`")?;
        let mut columns: Vec<ColumnDef> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                // Table-level `PRIMARY KEY (col)` constraint.
                self.expect_kw("KEY")?;
                self.expect_token(&Token::LParen, "`(`")?;
                let col = self.identifier("column name")?;
                self.expect_token(&Token::RParen, "`)`")?;
                if let Some(def) = columns
                    .iter_mut()
                    .find(|c| c.name.eq_ignore_ascii_case(&col))
                {
                    def.primary_key = true;
                } else {
                    return Err(ParseError::syntax(
                        format!("PRIMARY KEY references unknown column `{col}`"),
                        self.span(),
                    ));
                }
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen, "`)`")?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            if_not_exists,
            columns,
        }))
    }

    fn column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.identifier("column name")?;
        let type_name = self.identifier("column type")?.to_uppercase();
        let column_type = match type_name.as_str() {
            "INT" | "INTEGER" | "SMALLINT" | "TINYINT" | "MEDIUMINT" => ColumnType::Int,
            "BIGINT" => ColumnType::BigInt,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => ColumnType::Double,
            "VARCHAR" | "CHAR" => {
                self.expect_token(&Token::LParen, "`(`")?;
                let n = self.limit_number()?;
                self.expect_token(&Token::RParen, "`)`")?;
                ColumnType::Varchar(n as u32)
            }
            "TEXT" | "MEDIUMTEXT" | "LONGTEXT" | "BLOB" => ColumnType::Text,
            "DATETIME" | "TIMESTAMP" | "DATE" => ColumnType::DateTime,
            other => {
                return Err(ParseError::Unsupported {
                    message: format!("column type `{other}`"),
                })
            }
        };
        // Optional `(n)` display width for numeric types.
        if self.eat_token(&Token::LParen) {
            self.limit_number()?;
            self.expect_token(&Token::RParen, "`)`")?;
        }
        let mut def = ColumnDef {
            name,
            column_type,
            not_null: false,
            primary_key: false,
            auto_increment: false,
            default: None,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("NULL") {
                def.not_null = false;
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
            } else if self.eat_kw("AUTO_INCREMENT") {
                def.auto_increment = true;
            } else if self.eat_kw("DEFAULT") {
                def.default = Some(match self.advance() {
                    Some(Token::Int(v)) => Literal::Int(v),
                    Some(Token::Float(v)) => Literal::Float(v),
                    Some(Token::Str(s)) => Literal::Str(s),
                    Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Literal::Null,
                    Some(Token::Ident(s)) if s.eq_ignore_ascii_case("CURRENT_TIMESTAMP") => {
                        Literal::Str("CURRENT_TIMESTAMP".into())
                    }
                    _ => return Err(self.unexpected("a literal default")),
                });
            } else if self.eat_kw("UNIQUE") {
                // accepted, not enforced
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn drop_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier("table name")?;
        Ok(Statement::DropTable(DropTable { name, if_exists }))
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.xor_expr()?;
        loop {
            if self.eat_kw("OR") || self.eat_token(&Token::OrOr) {
                let right = self.xor_expr()?;
                left = Expr::binary(left, BinaryOp::Or, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn xor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("XOR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Xor, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        loop {
            if self.eat_kw("AND") || self.eat_token(&Token::AndAnd) {
                let right = self.not_expr()?;
                left = Expr::binary(left, BinaryOp::And, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") || self.eat_token(&Token::Bang) {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.bit_or()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            let right = self.bit_or()?;
            let op = if negated {
                BinaryOp::NotLike
            } else {
                BinaryOp::Like
            };
            return Ok(Expr::binary(left, op, right));
        }
        if self.eat_kw("IN") {
            self.expect_token(&Token::LParen, "`(`")?;
            if self.check_kw("SELECT") {
                let select = self.select()?;
                self.expect_token(&Token::RParen, "`)`")?;
                return Ok(Expr::InSelect {
                    expr: Box::new(left),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen, "`)`")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.bit_or()?;
            self.expect_kw("AND")?;
            let high = self.bit_or()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("LIKE, IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NullSafeEq) => Some(BinaryOp::NullSafeEq),
            Some(Token::Ne) => Some(BinaryOp::Ne),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.bit_or()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.bit_and()?;
        while self.eat_token(&Token::Pipe) {
            let right = self.bit_and()?;
            left = Expr::binary(left, BinaryOp::BitOr, right);
        }
        Ok(left)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.shift()?;
        while self.eat_token(&Token::Ampersand) {
            let right = self.shift()?;
            left = Expr::binary(left, BinaryOp::BitAnd, right);
        }
        Ok(left)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.additive()?;
        loop {
            let op = if self.eat_token(&Token::Shl) {
                BinaryOp::Shl
            } else if self.eat_token(&Token::Shr) {
                BinaryOp::Shr
            } else {
                return Ok(left);
            };
            let right = self.additive()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_token(&Token::Plus) {
                BinaryOp::Add
            } else if self.eat_token(&Token::Minus) {
                BinaryOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_token(&Token::Star) {
                BinaryOp::Mul
            } else if self.eat_token(&Token::Slash) {
                BinaryOp::Div
            } else if self.eat_token(&Token::Percent) || self.check_kw("MOD") {
                self.eat_kw("MOD");
                BinaryOp::Mod
            } else if self.eat_kw("DIV") {
                BinaryOp::IntDiv
            } else if self.eat_token(&Token::Caret) {
                BinaryOp::BitXor
            } else {
                return Ok(left);
            };
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_token(&Token::Minus) {
            let operand = self.unary()?;
            // Fold the sign into numeric literals (as MySQL's parser does):
            // `-5` is one data item, not an operator applied to data.
            return Ok(match operand {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(other),
                },
            });
        }
        if self.eat_token(&Token::Plus) {
            return self.unary();
        }
        if self.eat_token(&Token::Tilde) {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::BitNot,
                operand: Box::new(operand),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::Param) => {
                self.pos += 1;
                Ok(Expr::Param)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.check_kw("SELECT") {
                    let select = self.select()?;
                    self.expect_token(&Token::RParen, "`)`")?;
                    return Ok(Expr::Subquery(Box::new(select)));
                }
                let e = self.expr()?;
                self.expect_token(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if is_clause_keyword(&name)
                    && !name.eq_ignore_ascii_case("IN")
                    && !name.eq_ignore_ascii_case("LIKE")
                {
                    return Err(self.unexpected("an expression"));
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Int(1)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Int(0)));
                }
                if name.eq_ignore_ascii_case("EXISTS") {
                    self.pos += 1;
                    self.expect_token(&Token::LParen, "`(`")?;
                    let select = self.select()?;
                    self.expect_token(&Token::RParen, "`)`")?;
                    return Ok(Expr::Exists {
                        select: Box::new(select),
                        negated: false,
                    });
                }
                if name.eq_ignore_ascii_case("CASE") {
                    return self.case_expr();
                }
                self.pos += 1;
                // Function call?
                if self.check_token(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    // COUNT(*) special form.
                    if name.eq_ignore_ascii_case("COUNT") && self.eat_token(&Token::Star) {
                        self.expect_token(&Token::RParen, "`)`")?;
                        return Ok(Expr::Function {
                            name: "COUNT".into(),
                            args: vec![],
                        });
                    }
                    if name.eq_ignore_ascii_case("COUNT") && self.eat_kw("DISTINCT") {
                        // COUNT(DISTINCT x) — treated as COUNT(x).
                    }
                    if !self.check_token(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_token(&Token::RParen, "`)`")?;
                    return Ok(Expr::Function {
                        name: name.to_uppercase(),
                        args,
                    });
                }
                // Qualified column?
                if self.eat_token(&Token::Dot) {
                    let col = self.identifier("column name")?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            Some(Token::QuotedIdent(name)) => {
                self.pos += 1;
                if self.eat_token(&Token::Dot) {
                    let col = self.identifier("column name")?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("CASE")?;
        let operand = if self.check_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_branch = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const CLAUSES: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION", "ON", "SET", "VALUES",
        "AND", "OR", "XOR", "NOT", "AS", "JOIN", "INNER", "LEFT", "ASC", "DESC", "LIKE", "IN",
        "BETWEEN", "IS", "OFFSET", "INTO", "DIV", "MOD",
    ];
    CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k))
}

fn is_join_keyword(s: &str) -> bool {
    const KWS: &[&str] = &["JOIN", "INNER", "LEFT", "OUTER"];
    KWS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Statement {
        parse(src).expect("parse ok").statements.remove(0)
    }

    #[test]
    fn transaction_control_statements() {
        assert_eq!(one("BEGIN"), Statement::Begin);
        assert_eq!(one("start transaction"), Statement::Begin);
        assert_eq!(one("COMMIT"), Statement::Commit);
        assert_eq!(one("ROLLBACK"), Statement::Rollback);
        let p = parse("BEGIN; INSERT INTO t (a) VALUES (1); COMMIT").unwrap();
        assert_eq!(p.statements.len(), 3);
        assert!(p.statements[0].is_txn_control());
        assert!(!p.statements[1].is_txn_control());
        assert!(parse("START").is_err());
        // Round-trips through Display, like every other statement.
        assert_eq!(one("BEGIN").to_string(), "BEGIN");
        assert_eq!(one("COMMIT").to_string(), "COMMIT");
        assert_eq!(one("ROLLBACK").to_string(), "ROLLBACK");
    }

    #[test]
    fn parses_paper_query() {
        let s = one("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234");
        let Statement::Select(sel) = s else {
            panic!("expected SELECT")
        };
        assert_eq!(sel.items, vec![SelectItem::Wildcard]);
        assert_eq!(sel.from[0].name, "tickets");
        let Some(Expr::Binary {
            op: BinaryOp::And, ..
        }) = sel.where_clause
        else {
            panic!("expected AND condition")
        };
    }

    #[test]
    fn tautology_attack_parses_as_or() {
        let s = one("SELECT * FROM users WHERE name = '' OR '1'='1'");
        let Statement::Select(sel) = s else { panic!() };
        let Some(Expr::Binary {
            op: BinaryOp::Or, ..
        }) = sel.where_clause
        else {
            panic!("expected OR")
        };
    }

    #[test]
    fn comment_attack_truncates_where() {
        let p = parse("SELECT * FROM t WHERE a = 'x'-- ' AND b = 'y'").unwrap();
        assert!(p.trailing_line_comment);
        let Statement::Select(sel) = &p.statements[0] else {
            panic!()
        };
        // Only the first comparison survives.
        let Some(Expr::Binary {
            op: BinaryOp::Eq, ..
        }) = &sel.where_clause
        else {
            panic!("expected single equality")
        };
    }

    #[test]
    fn union_attack() {
        let s = one("SELECT a FROM t WHERE id = 1 UNION SELECT password FROM users");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.arms().count(), 2);
    }

    #[test]
    fn piggyback_parses_as_two_statements() {
        let p = parse("SELECT 1; DROP TABLE users").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(p.single().is_none());
    }

    #[test]
    fn insert_values() {
        let s = one("INSERT INTO users (name, age) VALUES ('ann', 31), ('bob', 25)");
        let Statement::Insert(i) = s else { panic!() };
        assert_eq!(i.columns, vec!["name", "age"]);
        let InsertSource::Values(rows) = i.source else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn insert_select() {
        let s = one("INSERT INTO archive (id) SELECT id FROM t WHERE old = 1");
        let Statement::Insert(i) = s else { panic!() };
        assert!(matches!(i.source, InsertSource::Select(_)));
    }

    #[test]
    fn update_and_delete() {
        let s = one("UPDATE t SET a = 1, b = 'x' WHERE id = 3 LIMIT 1");
        let Statement::Update(u) = s else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        assert!(u.where_clause.is_some());
        assert_eq!(
            u.limit,
            Some(Limit {
                count: 1,
                offset: 0
            })
        );

        let s = one("DELETE FROM t WHERE id = 3");
        let Statement::Delete(d) = s else { panic!() };
        assert_eq!(d.table, "t");
    }

    #[test]
    fn create_table_with_constraints() {
        let s = one("CREATE TABLE IF NOT EXISTS users (\
             id INT PRIMARY KEY AUTO_INCREMENT, \
             name VARCHAR(64) NOT NULL, \
             bio TEXT, \
             score DOUBLE DEFAULT 0)");
        let Statement::CreateTable(c) = s else {
            panic!()
        };
        assert!(c.if_not_exists);
        assert_eq!(c.columns.len(), 4);
        assert!(c.columns[0].primary_key && c.columns[0].auto_increment);
        assert!(c.columns[1].not_null);
        assert_eq!(c.columns[3].default, Some(Literal::Int(0)));
    }

    #[test]
    fn table_level_primary_key() {
        let s = one("CREATE TABLE t (id INT, name VARCHAR(10), PRIMARY KEY (id))");
        let Statement::CreateTable(c) = s else {
            panic!()
        };
        assert!(c.columns[0].primary_key);
    }

    #[test]
    fn functions_and_aggregates() {
        let s =
            one("SELECT COUNT(*), CONCAT(a, 'x'), UPPER(b) FROM t GROUP BY b HAVING COUNT(*) > 2");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
    }

    #[test]
    fn order_and_limit() {
        let s = one("SELECT a FROM t ORDER BY a DESC, b LIMIT 5, 10");
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.order_by[0].descending);
        assert!(!sel.order_by[1].descending);
        assert_eq!(
            sel.limit,
            Some(Limit {
                offset: 5,
                count: 10
            })
        );
    }

    #[test]
    fn in_between_like_isnull() {
        let s = one("SELECT * FROM t WHERE a IN (1,2,3) AND b NOT LIKE '%x%' \
             AND c BETWEEN 1 AND 9 AND d IS NOT NULL");
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn subqueries() {
        let s = one("SELECT * FROM t WHERE id IN (SELECT tid FROM u) AND EXISTS (SELECT 1 FROM v)");
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn joins() {
        let s = one("SELECT t.a, u.b FROM t JOIN u ON t.id = u.tid LEFT JOIN v ON v.id = t.vid");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.joins.len(), 2);
        assert_eq!(sel.joins[0].kind, JoinKind::Inner);
        assert_eq!(sel.joins[1].kind, JoinKind::Left);
    }

    #[test]
    fn case_expression() {
        let s = one("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr {
            expr: Expr::Case { .. },
            ..
        } = &sel.items[0]
        else {
            panic!("expected CASE")
        };
    }

    #[test]
    fn aliases() {
        let s = one("SELECT a AS x, b y FROM t1 AS p, t2 q");
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { alias: Some(x), .. } = &sel.items[0] else {
            panic!()
        };
        assert_eq!(x, "x");
        assert_eq!(sel.from[0].alias.as_deref(), Some("p"));
        assert_eq!(sel.from[1].alias.as_deref(), Some("q"));
    }

    #[test]
    fn schema_qualified_table_names() {
        let s = one("SELECT table_name FROM information_schema.tables");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from[0].name, "information_schema.tables");
    }

    #[test]
    fn unsupported_statement() {
        assert!(matches!(
            parse("GRANT ALL ON x TO y"),
            Err(ParseError::Unsupported { .. })
        ));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO").is_err());
        assert!(parse("").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
    }

    #[test]
    fn external_id_comment_surfaces() {
        let p = parse("/* qid:42 */ SELECT 1").unwrap();
        assert_eq!(p.comments, vec!["qid:42".to_string()]);
    }
}
