//! SQL rendering of the AST (used for logging and round-trip testing).

use std::fmt;

use crate::ast::*;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::Update(u) => write!(f, "{u}"),
            Statement::Delete(d) => write!(f, "{d}"),
            Statement::CreateTable(c) => write!(f, "{c}"),
            Statement::DropTable(d) => write!(f, "{d}"),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        for j in &self.joins {
            write!(f, " {} {}", j.kind, j.table)?;
            if let Some(on) = &j.on {
                write!(f, " ON {on}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.descending { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = &self.limit {
            if l.offset > 0 {
                write!(f, " LIMIT {}, {}", l.offset, l.count)?;
            } else {
                write!(f, " LIMIT {}", l.count)?;
            }
        }
        if let Some((all, next)) = &self.union {
            write!(f, " UNION {}{next}", if *all { "ALL " } else { "" })?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        match &self.source {
            InsertSource::Values(rows) => {
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, v) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            InsertSource::Select(s) => write!(f, " {s}"),
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (c, v)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c} = {v}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {}", l.count)?;
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {}", l.count)?;
        }
        Ok(())
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE ")?;
        if self.if_not_exists {
            write!(f, "IF NOT EXISTS ")?;
        }
        write!(f, "{} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.column_type)?;
            if c.not_null {
                write!(f, " NOT NULL")?;
            }
            if c.auto_increment {
                write!(f, " AUTO_INCREMENT")?;
            }
            if c.primary_key {
                write!(f, " PRIMARY KEY")?;
            }
            if let Some(d) = &c.default {
                write!(f, " DEFAULT {d}")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for DropTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DROP TABLE ")?;
        if self.if_exists {
            write!(f, "IF EXISTS ")?;
        }
        write!(f, "{}", self.name)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column {
                table: Some(t),
                name,
            } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Param => write!(f, "?"),
            // Unary forms need outer parens like every other compound
            // expression: `NOT` binds loosest, so an unparenthesized
            // `a > NOT (b)` would not reparse.
            Expr::Unary {
                op: UnaryOp::Not,
                operand,
            } => write!(f, "(NOT ({operand}))"),
            Expr::Unary { op, operand } => write!(f, "({}({operand}))", op.symbol()),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Function { name, args } => {
                if name == "COUNT" && args.is_empty() {
                    return write!(f, "COUNT(*)");
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::InSelect {
                expr,
                select,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}IN ({select}))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Subquery(s) => write!(f, "({s})"),
            Expr::Exists { select, negated } => {
                write!(
                    f,
                    "({}EXISTS ({select}))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    /// Parses, prints, re-parses and compares ASTs.
    fn round_trip(sql: &str) {
        let first = parse(sql).expect("first parse");
        let printed = first.statements[0].to_string();
        let second = parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(
            first.statements[0], second.statements[0],
            "printed: {printed}"
        );
    }

    #[test]
    fn round_trips() {
        for sql in [
            "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
            "SELECT DISTINCT a, b AS x FROM t WHERE a > 1 OR b < 2 ORDER BY a DESC LIMIT 3, 4",
            "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
            "SELECT a FROM t UNION ALL SELECT b FROM u",
            "SELECT t.a FROM t JOIN u ON t.id = u.tid LEFT JOIN v ON v.x = 1",
            "INSERT INTO users (name, age) VALUES ('a''b', 31), ('c', NULL)",
            "INSERT INTO a (x) SELECT y FROM b WHERE y IS NOT NULL",
            "UPDATE t SET a = 1, b = CONCAT(a, 'x') WHERE id IN (1, 2) LIMIT 1",
            "DELETE FROM t WHERE a BETWEEN 1 AND 2",
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, n VARCHAR(10) NOT NULL DEFAULT 'x')",
            "DROP TABLE IF EXISTS t",
            "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
            "SELECT a FROM t WHERE id IN (SELECT x FROM u)",
            "SELECT a FROM t WHERE s LIKE '%x%' AND r NOT LIKE 'y'",
        ] {
            round_trip(sql);
        }
    }
}
