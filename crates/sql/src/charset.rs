//! Connection-charset decoding — the root of the *semantic mismatch*.
//!
//! MySQL receives query bytes in the connection character set and converts
//! them to its internal representation before parsing. Under the common
//! `utf8_general_ci`-style collations several Unicode code points collapse
//! onto ASCII characters with syntactic meaning. The canonical example from
//! the paper: `U+02BC` (MODIFIER LETTER APOSTROPHE) is decoded into a plain
//! prime `'`, *after* application-side sanitization (which only escapes the
//! ASCII quote) has already run. This gap between what the application
//! believes it sent and what the DBMS executes is what SEPTIC calls the
//! **semantic mismatch**.
//!
//! This module reproduces that behaviour for the code points that matter to
//! the attacks in the paper's demonstration, plus the usual homoglyph
//! suspects that real-world WAF bypasses use (fullwidth forms, smart
//! quotes).

/// How a single character was rewritten by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharsetSubstitution {
    /// Byte offset in the *input* string where the substitution occurred.
    pub offset: usize,
    /// The original code point.
    pub from: char,
    /// The ASCII character MySQL folds it into.
    pub to: char,
}

/// Result of decoding a query string from the connection charset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedQuery {
    /// The query text as the parser will see it.
    pub text: String,
    /// Every homoglyph substitution that was applied, for diagnostics.
    pub substitutions: Vec<CharsetSubstitution>,
}

/// Maps a non-ASCII code point to the ASCII character MySQL's connection
/// charset conversion folds it into, if any.
///
/// The table intentionally covers only *syntactically dangerous* targets:
/// quotes, double quotes, backslash-lookalikes and fullwidth punctuation.
/// Folding of alphabetic homoglyphs (which only affects collation order,
/// not syntax) is irrelevant to injection and therefore omitted.
#[must_use]
pub fn fold_char(c: char) -> Option<char> {
    Some(match c {
        // Apostrophe / prime lookalikes → '
        '\u{02BC}' | '\u{2018}' | '\u{2019}' | '\u{201A}' | '\u{2032}' | '\u{FF07}'
        | '\u{02B9}' => '\'',
        // Double-quote lookalikes → "
        '\u{02BA}' | '\u{201C}' | '\u{201D}' | '\u{201E}' | '\u{2033}' | '\u{FF02}' => '"',
        // Backslash lookalikes → \
        '\u{FF3C}' | '\u{2216}' => '\\',
        // Fullwidth punctuation with SQL syntax meaning.
        '\u{FF08}' => '(',
        '\u{FF09}' => ')',
        '\u{FF0C}' => ',',
        '\u{FF1B}' => ';',
        '\u{FF1D}' => '=',
        '\u{FF0D}' => '-',
        '\u{FF03}' => '#',
        '\u{FF05}' => '%',
        _ => return None,
    })
}

/// Decodes a query string the way MySQL's connection-charset conversion
/// does: dangerous Unicode homoglyphs are folded to their ASCII
/// equivalents; everything else passes through unchanged.
///
/// # Examples
///
/// ```
/// use septic_sql::charset::decode;
///
/// // U+02BC is *not* an ASCII quote, so `mysql_real_escape_string` leaves
/// // it alone — but the DBMS decodes it into one.
/// let decoded = decode("SELECT * FROM t WHERE a = 'x\u{02BC} OR 1=1'");
/// assert!(decoded.text.contains("x' OR 1=1"));
/// assert_eq!(decoded.substitutions.len(), 1);
/// ```
#[must_use]
pub fn decode(raw: &str) -> DecodedQuery {
    let mut text = String::with_capacity(raw.len());
    let mut substitutions = Vec::new();
    for (offset, c) in raw.char_indices() {
        match fold_char(c) {
            Some(folded) => {
                substitutions.push(CharsetSubstitution {
                    offset,
                    from: c,
                    to: folded,
                });
                text.push(folded);
            }
            None => text.push(c),
        }
    }
    DecodedQuery {
        text,
        substitutions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_passes_through_untouched() {
        let q = "SELECT * FROM tickets WHERE reservID = 'ID34FG'";
        let d = decode(q);
        assert_eq!(d.text, q);
        assert!(d.substitutions.is_empty());
    }

    #[test]
    fn modifier_apostrophe_becomes_prime() {
        let d = decode("ID34FG\u{02BC}-- ");
        assert_eq!(d.text, "ID34FG'-- ");
        assert_eq!(d.substitutions.len(), 1);
        assert_eq!(d.substitutions[0].from, '\u{02BC}');
        assert_eq!(d.substitutions[0].to, '\'');
    }

    #[test]
    fn smart_quotes_fold() {
        let d = decode("\u{2018}a\u{2019} \u{201C}b\u{201D}");
        assert_eq!(d.text, "'a' \"b\"");
        assert_eq!(d.substitutions.len(), 4);
    }

    #[test]
    fn fullwidth_punctuation_folds() {
        let d = decode("1\u{FF1D}1\u{FF1B}");
        assert_eq!(d.text, "1=1;");
    }

    #[test]
    fn offsets_are_byte_offsets_into_input() {
        let d = decode("ab\u{02BC}");
        assert_eq!(d.substitutions[0].offset, 2);
    }

    #[test]
    fn alphabetic_homoglyphs_are_not_folded() {
        // Cyrillic 'а' looks like Latin 'a' but has no syntactic meaning.
        let d = decode("\u{0430}bc");
        assert_eq!(d.text, "\u{0430}bc");
        assert!(d.substitutions.is_empty());
    }
}
