//! # septic-sql
//!
//! MySQL-flavoured SQL front end for the SEPTIC reproduction: connection
//! charset decoding, lexer, recursive-descent parser, AST, SQL rendering,
//! and the lowering of validated statements into the **item stack**
//! representation SEPTIC's query structures are built from.
//!
//! The crate purposely reproduces the MySQL behaviours behind the paper's
//! *semantic mismatch*:
//!
//! * Unicode homoglyph folding during connection-charset decoding
//!   ([`charset::decode`]), e.g. `U+02BC` → `'`;
//! * `-- ` needing trailing whitespace, `#` comments, executable
//!   `/*! ... */` version comments;
//! * backslash *and* doubled-quote string escapes, hex literals.
//!
//! ## Example
//!
//! ```
//! use septic_sql::{charset, parse, items};
//!
//! // The application believed it sent a quoted string; the DBMS decodes the
//! // modifier apostrophe into a real quote and the structure changes.
//! let raw = "SELECT * FROM tickets WHERE reservID = 'ID34FG\u{02BC}-- '";
//! let decoded = charset::decode(raw);
//! let parsed = parse(&decoded.text)?;
//! let stack = items::lower_all(&parsed.statements);
//! assert!(stack.len() > 0);
//! # Ok::<(), septic_sql::ParseError>(())
//! ```

pub mod ast;
pub mod charset;
pub mod display;
pub mod error;
pub mod items;
pub mod parser;
pub mod token;

pub use ast::Statement;
pub use error::{ParseError, Span};
pub use items::{Item, ItemData, ItemStack, ItemTag};
pub use parser::{parse, Parsed};

/// Convenience: charset-decode then parse, the way the server front end
/// receives a query.
///
/// # Errors
///
/// Propagates [`ParseError`] from the lexer/parser.
pub fn decode_and_parse(raw: &str) -> Result<Parsed, ParseError> {
    parse(&charset::decode(raw).text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_and_parse_applies_charset_folding() {
        // Sanitized-but-bypassed second-order payload: the U+02BC closes the
        // string once MySQL decodes it.
        let raw = "SELECT * FROM tickets WHERE reservID = 'ID34FG\u{02BC} OR 1=1-- '";
        let parsed = decode_and_parse(raw).expect("parse");
        // After folding, `OR 1=1` escapes the string literal.
        let sql = parsed.statements[0].to_string();
        assert!(sql.contains("OR"), "structure should contain OR: {sql}");
    }
}
