//! MySQL-flavoured lexer.
//!
//! Reproduces the tokenisation quirks that matter for injection analysis:
//!
//! * `-- ` line comments require a following whitespace character (MySQL
//!   rule), `#` comments do not;
//! * `/* ... */` block comments are skipped but *collected* (SEPTIC reads
//!   the optional external query identifier from the first one);
//! * `/*!12345 ... */` version comments have their body **executed** — a
//!   classic WAF-evasion channel that the lexer must honour;
//! * string literals accept both backslash escapes and doubled quotes;
//! * hexadecimal literals `0x41` / `X'41'` decode to strings.

use std::fmt;

use crate::error::{ParseError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (case preserved; parser matches
    /// keywords case-insensitively).
    Ident(String),
    /// Backtick-quoted identifier.
    QuotedIdent(String),
    /// String literal, with escapes already decoded.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `?` positional parameter.
    Param,
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NullSafeEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Ampersand,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
}

impl Token {
    /// Returns the identifier text if this token is an unquoted identifier.
    #[must_use]
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given keyword (ASCII case-insensitive).
    #[must_use]
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::QuotedIdent(s) => write!(f, "`{s}`"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Param => write!(f, "?"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NullSafeEq => write!(f, "<=>"),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Ampersand => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Tilde => write!(f, "~"),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    pub token: Token,
    pub span: Span,
}

/// Output of [`lex`]: the token stream plus side-channel information the
/// parser and SEPTIC need.
#[derive(Debug, Clone, Default)]
pub struct LexOutput {
    pub tokens: Vec<SpannedToken>,
    /// Bodies of ordinary `/* ... */` block comments, in source order.
    /// SEPTIC's ID generator reads the external identifier from the first.
    pub comments: Vec<String>,
    /// True when a `-- `/`#` comment swallowed the remainder of the query —
    /// the footprint of comment-based injection payloads.
    pub trailing_line_comment: bool,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
}

/// Lexes a (charset-decoded) query string.
///
/// # Errors
///
/// Returns [`ParseError::Lex`] on unterminated strings/comments, invalid
/// hex literals or unexpected characters.
pub fn lex(src: &str) -> Result<LexOutput, ParseError> {
    let mut lexer = Lexer {
        chars: src.chars().collect(),
        pos: 0,
    };
    lexer.run()
}

impl Lexer {
    fn run(&mut self) -> Result<LexOutput, ParseError> {
        let mut out = LexOutput::default();
        loop {
            self.skip_whitespace();
            let start = self.pos;
            let Some(c) = self.peek() else { break };
            match c {
                '#' => {
                    self.skip_line_comment();
                    out.trailing_line_comment = self.pos >= self.chars.len();
                }
                '-' if self.peek_at(1) == Some('-')
                    && self
                        .peek_at(2)
                        .is_none_or(|c| c.is_whitespace() || c == '\u{0}') =>
                {
                    // MySQL: `--` starts a comment only when followed by
                    // whitespace (or end of input).
                    self.skip_line_comment();
                    out.trailing_line_comment = self.pos >= self.chars.len();
                }
                '/' if self.peek_at(1) == Some('*') => {
                    if self.peek_at(2) == Some('!') {
                        // Version comment: strip the `/*!NNNNN` prefix and the
                        // closing `*/`; the body stays in the token stream.
                        self.pos += 3;
                        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            self.pos += 1;
                        }
                        // Tokens continue; the matching `*/` is handled below
                        // when encountered as `*` `/`. Simplest correct
                        // approach: scan for the terminator now and re-lex the
                        // body by splicing.
                        let body_start = self.pos;
                        let mut depth = 1usize;
                        while depth > 0 {
                            match (self.peek(), self.peek_at(1)) {
                                (Some('*'), Some('/')) => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                    self.pos += 2;
                                }
                                (Some(_), _) => self.pos += 1,
                                (None, _) => {
                                    return Err(self.err(start, "unterminated version comment"))
                                }
                            }
                        }
                        let body: String = self.chars[body_start..self.pos].iter().collect();
                        self.pos += 2; // consume `*/`
                        let inner = lex(&body)?;
                        out.tokens.extend(inner.tokens);
                        out.comments.extend(inner.comments);
                    } else {
                        let body = self.skip_block_comment(start)?;
                        out.comments.push(body);
                    }
                }
                '\'' | '"' => {
                    let s = self.lex_string(c)?;
                    out.tokens.push(self.spanned(start, Token::Str(s)));
                }
                '`' => {
                    let s = self.lex_backtick()?;
                    out.tokens.push(self.spanned(start, Token::QuotedIdent(s)));
                }
                '0' if matches!(self.peek_at(1), Some('x') | Some('X'))
                    && self.peek_at(2).is_some_and(|c| c.is_ascii_hexdigit()) =>
                {
                    self.pos += 2;
                    let s = self.lex_hex_digits(start)?;
                    out.tokens.push(self.spanned(start, Token::Str(s)));
                }
                'x' | 'X' if self.peek_at(1) == Some('\'') => {
                    self.pos += 2;
                    let s = self.lex_hex_digits(start)?;
                    if self.peek() != Some('\'') {
                        return Err(self.err(start, "unterminated hex literal"));
                    }
                    self.pos += 1;
                    out.tokens.push(self.spanned(start, Token::Str(s)));
                }
                c if c.is_ascii_digit()
                    || (c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())) =>
                {
                    let tok = self.lex_number(start)?;
                    out.tokens.push(self.spanned(start, tok));
                }
                c if is_ident_start(c) => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if is_ident_part(c) {
                            s.push(c);
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(self.spanned(start, Token::Ident(s)));
                }
                _ => {
                    let tok = self.lex_operator(start)?;
                    out.tokens.push(self.spanned(start, tok));
                }
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn spanned(&self, start: usize, token: Token) -> SpannedToken {
        SpannedToken {
            token,
            span: Span {
                start,
                end: self.pos,
            },
        }
    }

    fn err(&self, at: usize, msg: &str) -> ParseError {
        ParseError::Lex {
            message: msg.to_string(),
            span: Span {
                start: at,
                end: self.pos,
            },
        }
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == '\n' {
                break;
            }
        }
    }

    fn skip_block_comment(&mut self, start: usize) -> Result<String, ParseError> {
        self.pos += 2; // `/*`
        let body_start = self.pos;
        loop {
            match (self.peek(), self.peek_at(1)) {
                (Some('*'), Some('/')) => {
                    let body: String = self.chars[body_start..self.pos].iter().collect();
                    self.pos += 2;
                    return Ok(body.trim().to_string());
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => return Err(self.err(start, "unterminated block comment")),
            }
        }
    }

    fn lex_string(&mut self, quote: char) -> Result<String, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(start, "unterminated string literal")),
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.err(start, "unterminated string literal")),
                        Some(e) => {
                            self.pos += 1;
                            s.push(unescape(e));
                        }
                    }
                }
                Some(c) if c == quote => {
                    if self.peek_at(1) == Some(quote) {
                        // Doubled quote = literal quote.
                        s.push(quote);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(s);
                    }
                }
                Some(c) => {
                    s.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn lex_backtick(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(start, "unterminated quoted identifier")),
                Some('`') => {
                    if self.peek_at(1) == Some('`') {
                        s.push('`');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(s);
                    }
                }
                Some(c) => {
                    s.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn lex_hex_digits(&mut self, start: usize) -> Result<String, ParseError> {
        let digit_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
            self.pos += 1;
        }
        let digits: String = self.chars[digit_start..self.pos].iter().collect();
        if digits.is_empty() || !digits.len().is_multiple_of(2) {
            return Err(self.err(start, "invalid hexadecimal literal"));
        }
        let mut bytes = Vec::with_capacity(digits.len() / 2);
        for pair in digits.as_bytes().chunks(2) {
            let hi = (pair[0] as char).to_digit(16).expect("hex digit");
            let lo = (pair[1] as char).to_digit(16).expect("hex digit");
            bytes.push((hi * 16 + lo) as u8);
        }
        // MySQL treats hex literals as (binary) strings in string context.
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, ParseError> {
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' if !is_float => {
                    is_float = true;
                    self.pos += 1;
                }
                'e' | 'E'
                    if self
                        .peek_at(1)
                        .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-') =>
                {
                    is_float = true;
                    self.pos += 2;
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    break;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Token::Float)
                .map_err(|_| self.err(start, "invalid numeric literal"))
        } else {
            // Overflowing integers fall back to float, like MySQL DECIMAL.
            match text.parse::<i64>() {
                Ok(v) => Ok(Token::Int(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Token::Float)
                    .map_err(|_| self.err(start, "invalid numeric literal")),
            }
        }
    }

    fn lex_operator(&mut self, start: usize) -> Result<Token, ParseError> {
        let c = self.peek().expect("caller checked");
        let two = (c, self.peek_at(1));
        let tok = match two {
            ('<', Some('=')) if self.peek_at(2) == Some('>') => {
                self.pos += 3;
                return Ok(Token::NullSafeEq);
            }
            ('<', Some('=')) => {
                self.pos += 2;
                Token::Le
            }
            ('<', Some('>')) => {
                self.pos += 2;
                Token::Ne
            }
            ('<', Some('<')) => {
                self.pos += 2;
                Token::Shl
            }
            ('>', Some('=')) => {
                self.pos += 2;
                Token::Ge
            }
            ('>', Some('>')) => {
                self.pos += 2;
                Token::Shr
            }
            ('!', Some('=')) => {
                self.pos += 2;
                Token::Ne
            }
            ('&', Some('&')) => {
                self.pos += 2;
                Token::AndAnd
            }
            ('|', Some('|')) => {
                self.pos += 2;
                Token::OrOr
            }
            _ => {
                self.pos += 1;
                match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    ',' => Token::Comma,
                    ';' => Token::Semicolon,
                    '.' => Token::Dot,
                    '*' => Token::Star,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '/' => Token::Slash,
                    '%' => Token::Percent,
                    '=' => Token::Eq,
                    '<' => Token::Lt,
                    '>' => Token::Gt,
                    '!' => Token::Bang,
                    '&' => Token::Ampersand,
                    '|' => Token::Pipe,
                    '^' => Token::Caret,
                    '~' => Token::Tilde,
                    '?' => Token::Param,
                    other => {
                        return Err(self.err(start, &format!("unexpected character `{other}`")))
                    }
                }
            }
        };
        Ok(tok)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '@' || c == '$' || !c.is_ascii()
}

fn is_ident_part(c: char) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        'b' => '\u{8}',
        'Z' => '\u{1a}',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lex ok")
            .tokens
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234");
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::Star);
        assert!(t.contains(&Token::Str("ID34FG".into())));
        assert!(t.contains(&Token::Int(1234)));
    }

    #[test]
    fn double_dash_requires_whitespace() {
        // `a--b` is arithmetic (a - (-b)), not a comment.
        let t = toks("a--b");
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::Minus,
                Token::Minus,
                Token::Ident("b".into())
            ]
        );
        // `a-- b` *is* a comment.
        let out = lex("a-- b").unwrap();
        assert_eq!(out.tokens.len(), 1);
        assert!(out.trailing_line_comment);
    }

    #[test]
    fn double_dash_at_end_of_input_is_comment() {
        let out = lex("x = 1--").unwrap();
        assert_eq!(out.tokens.len(), 3);
        assert!(out.trailing_line_comment);
    }

    #[test]
    fn hash_comment() {
        let out = lex("SELECT 1 # trailing").unwrap();
        assert_eq!(out.tokens.len(), 2);
        assert!(out.trailing_line_comment);
    }

    #[test]
    fn block_comments_are_collected() {
        let out = lex("/* qid:login-1 */ SELECT 1").unwrap();
        assert_eq!(out.comments, vec!["qid:login-1".to_string()]);
        assert_eq!(out.tokens.len(), 2);
    }

    #[test]
    fn version_comment_body_is_executed() {
        // Classic WAF evasion: UNION hidden in a version comment.
        let t = toks("SELECT 1 /*!50000 UNION SELECT 2*/");
        assert!(t.iter().any(|t| t.is_kw("UNION")));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r"'a\'b'"), vec![Token::Str("a'b".into())]);
        assert_eq!(toks("'a''b'"), vec![Token::Str("a'b".into())]);
        assert_eq!(toks(r"'a\nb'"), vec![Token::Str("a\nb".into())]);
        assert_eq!(toks(r#""dq""#), vec![Token::Str("dq".into())]);
    }

    #[test]
    fn hex_literals_decode_to_strings() {
        assert_eq!(toks("0x414243"), vec![Token::Str("ABC".into())]);
        assert_eq!(toks("X'6162'"), vec![Token::Str("ab".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("3.5"), vec![Token::Float(3.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks(".5"), vec![Token::Float(0.5)]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <=> b <> c != d"),
            vec![
                Token::Ident("a".into()),
                Token::NullSafeEq,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn backtick_identifiers() {
        assert_eq!(
            toks("`weird name`"),
            vec![Token::QuotedIdent("weird name".into())]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("`abc").is_err());
    }

    #[test]
    fn params() {
        assert_eq!(
            toks("? , ?"),
            vec![Token::Param, Token::Comma, Token::Param]
        );
    }
}
