//! Parse-layer error types.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Byte range in the source query (character indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Error produced while lexing or parsing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Lexical error (bad literal, unterminated string/comment, …).
    Lex { message: String, span: Span },
    /// Grammar error.
    Syntax { message: String, span: Span },
    /// The statement kind is recognised but not supported by this engine.
    Unsupported { message: String },
}

impl ParseError {
    /// Convenience constructor for grammar errors.
    #[must_use]
    pub fn syntax(message: impl Into<String>, span: Span) -> Self {
        ParseError::Syntax {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex { message, span } => {
                write!(f, "lexical error at {span}: {message}")
            }
            ParseError::Syntax { message, span } => {
                write!(f, "syntax error at {span}: {message}")
            }
            ParseError::Unsupported { message } => write!(f, "unsupported SQL: {message}"),
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ParseError::syntax("expected FROM", Span { start: 3, end: 7 });
        assert_eq!(e.to_string(), "syntax error at 3..7: expected FROM");
        let e = ParseError::Unsupported {
            message: "LOAD DATA".into(),
        };
        assert_eq!(e.to_string(), "unsupported SQL: LOAD DATA");
    }
}
