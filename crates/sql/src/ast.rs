//! Abstract syntax tree for the MySQL dialect subset the engine executes.
//!
//! The AST is deliberately close to MySQL's internal representation: the
//! same query element categories (fields, functions, conditions, literals)
//! exist here that MySQL stores in its item list, which is what SEPTIC's
//! query structures are derived from.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Select(Select),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    CreateTable(CreateTable),
    DropTable(DropTable),
    /// `BEGIN` / `START TRANSACTION`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}

impl Statement {
    /// Short uppercase command name (`SELECT`, `INSERT`, …) as MySQL's
    /// general log prints it.
    #[must_use]
    pub fn command(&self) -> &'static str {
        match self {
            Statement::Select(_) => "SELECT",
            Statement::Insert(_) => "INSERT",
            Statement::Update(_) => "UPDATE",
            Statement::Delete(_) => "DELETE",
            Statement::CreateTable(_) => "CREATE TABLE",
            Statement::DropTable(_) => "DROP TABLE",
            Statement::Begin => "BEGIN",
            Statement::Commit => "COMMIT",
            Statement::Rollback => "ROLLBACK",
        }
    }

    /// True for the statements whose user data SEPTIC's stored-injection
    /// plugins examine (the paper: `INSERT` and `UPDATE` commands).
    #[must_use]
    pub fn is_write_with_user_data(&self) -> bool {
        matches!(self, Statement::Insert(_) | Statement::Update(_))
    }

    /// True for transaction-control statements (`BEGIN`/`COMMIT`/
    /// `ROLLBACK`), which the server handles in its transactional path
    /// rather than the executor.
    #[must_use]
    pub fn is_txn_control(&self) -> bool {
        matches!(
            self,
            Statement::Begin | Statement::Commit | Statement::Rollback
        )
    }
}

/// `SELECT` statement (one arm of a possible `UNION` chain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderBy>,
    pub limit: Option<Limit>,
    /// `UNION [ALL] <select>` continuation.
    pub union: Option<(bool, Box<Select>)>,
}

impl Select {
    /// An empty `SELECT` skeleton; used by builders and tests.
    #[must_use]
    pub fn new() -> Self {
        Select {
            distinct: false,
            items: Vec::new(),
            from: Vec::new(),
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            union: None,
        }
    }

    /// Iterates over this select and every `UNION` arm after it.
    pub fn arms(&self) -> impl Iterator<Item = &Select> {
        let mut arms = vec![self];
        let mut cur = self;
        while let Some((_, next)) = &cur.union {
            arms.push(next);
            cur = next;
        }
        arms.into_iter()
    }
}

impl Default for Select {
    fn default() -> Self {
        Self::new()
    }
}

/// One projected column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TableRef {
            name: name.into(),
            alias: None,
        }
    }

    /// Name the executor binds columns against (alias wins).
    #[must_use]
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Join kinds supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinKind::Inner => write!(f, "JOIN"),
            JoinKind::Left => write!(f, "LEFT JOIN"),
        }
    }
}

/// `JOIN <table> ON <expr>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Option<Expr>,
}

/// `ORDER BY` element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    pub expr: Expr,
    pub descending: bool,
}

/// `LIMIT [offset,] count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Limit {
    pub count: u64,
    pub offset: u64,
}

/// `INSERT INTO t (cols) VALUES (...), ...` or `INSERT INTO t ... SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
}

/// The row source of an `INSERT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<Select>),
}

/// `UPDATE t SET col = expr, ... [WHERE ...] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
    pub limit: Option<Limit>,
}

/// `DELETE FROM t [WHERE ...] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
    pub limit: Option<Limit>,
}

/// Column data types (MySQL subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    Int,
    BigInt,
    Double,
    Varchar(u32),
    Text,
    DateTime,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INT"),
            ColumnType::BigInt => write!(f, "BIGINT"),
            ColumnType::Double => write!(f, "DOUBLE"),
            ColumnType::Varchar(n) => write!(f, "VARCHAR({n})"),
            ColumnType::Text => write!(f, "TEXT"),
            ColumnType::DateTime => write!(f, "DATETIME"),
        }
    }
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub column_type: ColumnType,
    pub not_null: bool,
    pub primary_key: bool,
    pub auto_increment: bool,
    pub default: Option<Literal>,
}

/// `CREATE TABLE [IF NOT EXISTS] t (...)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateTable {
    pub name: String,
    pub if_not_exists: bool,
    pub columns: Vec<ColumnDef>,
}

/// `DROP TABLE [IF EXISTS] t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropTable {
    pub name: String,
    pub if_exists: bool,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            // `{v:?}` keeps a decimal point on integral values (`2.0`, not
            // `2`), so a printed float never reparses as an integer.
            Literal::Float(v) => write!(f, "{v:?}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// Binary operators, carrying the MySQL spelling for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    And,
    Or,
    Xor,
    Eq,
    NullSafeEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    IntDiv,
    Mod,
    Like,
    NotLike,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinaryOp {
    /// True for `AND`/`OR`/`XOR` — MySQL models those as `COND_ITEM`s,
    /// everything else as `FUNC_ITEM`s, and the distinction shows up in the
    /// SEPTIC query structure.
    #[must_use]
    pub fn is_condition(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or | BinaryOp::Xor)
    }

    /// The SQL spelling of the operator.
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Xor => "XOR",
            BinaryOp::Eq => "=",
            BinaryOp::NullSafeEq => "<=>",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::IntDiv => "DIV",
            BinaryOp::Mod => "%",
            BinaryOp::Like => "LIKE",
            BinaryOp::NotLike => "NOT LIKE",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    Neg,
    Not,
    BitNot,
}

impl UnaryOp {
    #[must_use]
    pub fn symbol(&self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "NOT",
            UnaryOp::BitNot => "~",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    Literal(Literal),
    /// Column reference, optionally table-qualified.
    Column {
        table: Option<String>,
        name: String,
    },
    /// `?` placeholder.
    Param,
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Function call, e.g. `CONCAT(a, b)`. Name stored uppercase.
    Function {
        name: String,
        args: Vec<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (items...)` or `expr [NOT] IN (SELECT ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSelect {
        expr: Box<Expr>,
        select: Box<Select>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)`.
    Subquery(Box<Select>),
    /// `EXISTS (SELECT ...)`.
    Exists {
        select: Box<Select>,
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience: a string literal expression.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Expr::Literal(Literal::Str(s.into()))
    }

    /// Convenience: an integer literal expression.
    #[must_use]
    pub fn int(v: i64) -> Self {
        Expr::Literal(Literal::Int(v))
    }

    /// Convenience: an unqualified column reference.
    #[must_use]
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Convenience: binary expression.
    #[must_use]
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Self {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Collects every string literal in the expression tree, in evaluation
    /// order. SEPTIC's stored-injection plugins scan these as the candidate
    /// user inputs of `INSERT`/`UPDATE` statements.
    pub fn collect_string_literals<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(Literal::Str(s)) => out.push(s),
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param => {}
            Expr::Unary { operand, .. } => operand.collect_string_literals(out),
            Expr::Binary { left, right, .. } => {
                left.collect_string_literals(out);
                right.collect_string_literals(out);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_string_literals(out);
                }
            }
            Expr::IsNull { expr, .. } => expr.collect_string_literals(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_string_literals(out);
                for e in list {
                    e.collect_string_literals(out);
                }
            }
            Expr::InSelect { expr, .. } => expr.collect_string_literals(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_string_literals(out);
                low.collect_string_literals(out);
                high.collect_string_literals(out);
            }
            Expr::Subquery(_) | Expr::Exists { .. } => {}
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    op.collect_string_literals(out);
                }
                for (w, t) in branches {
                    w.collect_string_literals(out);
                    t.collect_string_literals(out);
                }
                if let Some(e) = else_branch {
                    e.collect_string_literals(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_names() {
        let s = Statement::Select(Select::new());
        assert_eq!(s.command(), "SELECT");
        assert!(!s.is_write_with_user_data());
        let i = Statement::Insert(Insert {
            table: "t".into(),
            columns: vec![],
            source: InsertSource::Values(vec![]),
        });
        assert!(i.is_write_with_user_data());
    }

    #[test]
    fn cond_vs_func_operators() {
        assert!(BinaryOp::And.is_condition());
        assert!(BinaryOp::Or.is_condition());
        assert!(BinaryOp::Xor.is_condition());
        assert!(!BinaryOp::Eq.is_condition());
        assert!(!BinaryOp::Like.is_condition());
    }

    #[test]
    fn collects_string_literals_in_order() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::str("one")),
            BinaryOp::And,
            Expr::Function {
                name: "CONCAT".into(),
                args: vec![Expr::str("two"), Expr::int(3), Expr::str("four")],
            },
        );
        let mut out = Vec::new();
        e.collect_string_literals(&mut out);
        assert_eq!(out, vec!["one", "two", "four"]);
    }

    #[test]
    fn union_arms_iterates_chain() {
        let mut s = Select::new();
        let mut second = Select::new();
        second.distinct = true;
        s.union = Some((true, Box::new(second)));
        assert_eq!(s.arms().count(), 2);
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }
}
