//! The query **item stack** — MySQL's post-validation representation.
//!
//! After parsing and validating a query, MySQL stores the query elements in
//! a stack of items; SEPTIC receives this structure and derives the *query
//! structure* (QS) from it. Each node is either
//! `⟨ELEM_TYPE, ELEM_DATA⟩` (structure: clauses, fields, functions,
//! conditions) or `⟨DATA_TYPE, DATA⟩` (user data: literals), exactly as in
//! Figure 2 of the paper.
//!
//! The stack is built bottom-up: `FROM_TABLE` entries first, then
//! `SELECT_FIELD`s, then the `WHERE` expression in postfix order (operands
//! before their operator), so the query
//! `SELECT * FROM tickets WHERE reservID='ID34FG' AND creditCard=1234`
//! lowers to (top of stack first):
//!
//! ```text
//! COND_ITEM    AND
//! FUNC_ITEM    =
//! INT_ITEM     1234
//! FIELD_ITEM   creditcard
//! FUNC_ITEM    =
//! STRING_ITEM  ID34FG
//! FIELD_ITEM   reservid
//! SELECT_FIELD *
//! FROM_TABLE   tickets
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::*;

/// The category of a stack node.
///
/// Tags ending in `Item` that carry literals (`IntItem`, `StringItem`,
/// `RealItem`, `NullItem`, `ParamItem`) are **data** nodes: their payload is
/// user-controlled and is blanked to ⊥ in query models. All other tags are
/// **element** nodes whose payload is part of the query structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemTag {
    // -- element (structure) tags --
    FromTable,
    SelectField,
    FieldItem,
    FuncItem,
    CondItem,
    OrderField,
    GroupField,
    HavingItem,
    LimitItem,
    UnionItem,
    JoinItem,
    SubselectBegin,
    SubselectEnd,
    InsertTable,
    InsertField,
    RowItem,
    UpdateTable,
    UpdateField,
    DeleteTable,
    DdlItem,
    // -- data tags --
    IntItem,
    StringItem,
    RealItem,
    NullItem,
    ParamItem,
}

impl ItemTag {
    /// True for `⟨DATA_TYPE, DATA⟩` nodes (their payload is blanked in the
    /// query model).
    #[must_use]
    pub fn is_data(self) -> bool {
        matches!(
            self,
            ItemTag::IntItem
                | ItemTag::StringItem
                | ItemTag::RealItem
                | ItemTag::NullItem
                | ItemTag::ParamItem
        )
    }

    /// The `SCREAMING_SNAKE` name MySQL/SEPTIC logs use.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ItemTag::FromTable => "FROM_TABLE",
            ItemTag::SelectField => "SELECT_FIELD",
            ItemTag::FieldItem => "FIELD_ITEM",
            ItemTag::FuncItem => "FUNC_ITEM",
            ItemTag::CondItem => "COND_ITEM",
            ItemTag::OrderField => "ORDER_FIELD",
            ItemTag::GroupField => "GROUP_FIELD",
            ItemTag::HavingItem => "HAVING_ITEM",
            ItemTag::LimitItem => "LIMIT_ITEM",
            ItemTag::UnionItem => "UNION_ITEM",
            ItemTag::JoinItem => "JOIN_ITEM",
            ItemTag::SubselectBegin => "SUBSELECT_BEGIN",
            ItemTag::SubselectEnd => "SUBSELECT_END",
            ItemTag::InsertTable => "INSERT_TABLE",
            ItemTag::InsertField => "INSERT_FIELD",
            ItemTag::RowItem => "ROW_ITEM",
            ItemTag::UpdateTable => "UPDATE_TABLE",
            ItemTag::UpdateField => "UPDATE_FIELD",
            ItemTag::DeleteTable => "DELETE_TABLE",
            ItemTag::DdlItem => "DDL_ITEM",
            ItemTag::IntItem => "INT_ITEM",
            ItemTag::StringItem => "STRING_ITEM",
            ItemTag::RealItem => "REAL_ITEM",
            ItemTag::NullItem => "NULL_ITEM",
            ItemTag::ParamItem => "PARAM_ITEM",
        }
    }
}

impl fmt::Display for ItemTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Payload of a stack node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ItemData {
    Text(String),
    Int(i64),
    Real(f64),
    Null,
    /// ⊥ — the blanked value in query models.
    Bot,
}

impl fmt::Display for ItemData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemData::Text(s) => f.write_str(s),
            ItemData::Int(v) => write!(f, "{v}"),
            ItemData::Real(v) => write!(f, "{v}"),
            ItemData::Null => f.write_str("NULL"),
            ItemData::Bot => f.write_str("\u{22A5}"), // ⊥
        }
    }
}

/// One node of the item stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    pub tag: ItemTag,
    pub data: ItemData,
}

impl Item {
    #[must_use]
    pub fn elem(tag: ItemTag, data: impl Into<String>) -> Self {
        debug_assert!(!tag.is_data(), "element constructor used with data tag");
        Item {
            tag,
            data: ItemData::Text(data.into()),
        }
    }

    /// Canonical bytes used for hashing into the internal query identifier.
    /// Data payloads contribute only their tag, so queries differing only in
    /// literals hash identically.
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.tag.name().as_bytes());
        out.push(0x1f);
        if !self.tag.is_data() {
            if let ItemData::Text(s) = &self.data {
                // Identifiers are case-insensitive in MySQL.
                out.extend_from_slice(s.to_ascii_lowercase().as_bytes());
            }
        }
        out.push(0x1e);
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<15} {}", self.tag, self.data)
    }
}

/// The full item stack of a validated query. Index 0 is the **bottom** of
/// the stack; [`ItemStack::rows_top_down`] yields the paper's figure order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ItemStack {
    items: Vec<Item>,
}

impl ItemStack {
    #[must_use]
    pub fn new() -> Self {
        ItemStack { items: Vec::new() }
    }

    pub fn push(&mut self, item: Item) {
        self.items.push(item);
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bottom-up view of the nodes.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Nodes from the top of the stack downwards — the order the paper's
    /// figures are drawn in.
    pub fn rows_top_down(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().rev()
    }

    /// String literal payloads in the stack (candidate user inputs for the
    /// stored-injection plugins).
    pub fn string_data(&self) -> impl Iterator<Item = &str> {
        self.items.iter().filter_map(|i| match (&i.tag, &i.data) {
            (ItemTag::StringItem, ItemData::Text(s)) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Which construct families the stack exercises — the node families a
    /// trained model distinguishes. The detector's observability layer uses
    /// this to attribute verdicts to the SQL surface that produced them.
    #[must_use]
    pub fn construct_profile(&self) -> ConstructProfile {
        let mut p = ConstructProfile::default();
        for item in &self.items {
            match item.tag {
                ItemTag::JoinItem => p.join = true,
                ItemTag::GroupField | ItemTag::HavingItem => p.group_by = true,
                ItemTag::SubselectBegin => p.subquery = true,
                ItemTag::UnionItem => p.union = true,
                _ => {}
            }
        }
        p
    }
}

/// Structural construct families present in a lowered stack (see
/// [`ItemStack::construct_profile`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstructProfile {
    /// `JOIN_ITEM` nodes — explicit JOIN clauses.
    pub join: bool,
    /// `GROUP_FIELD`/`HAVING_ITEM` nodes — grouping and group filters.
    pub group_by: bool,
    /// `SUBSELECT_BEGIN` brackets — scalar/IN/EXISTS subqueries.
    pub subquery: bool,
    /// `UNION_ITEM` nodes — UNION chains (top level or inside a subquery).
    pub union: bool,
}

impl fmt::Display for ItemStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in self.rows_top_down() {
            writeln!(f, "{item}")?;
        }
        Ok(())
    }
}

impl FromIterator<Item> for ItemStack {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        ItemStack {
            items: iter.into_iter().collect(),
        }
    }
}

/// Lowers a validated statement to its item stack.
#[must_use]
pub fn lower(statement: &Statement) -> ItemStack {
    let mut stack = ItemStack::new();
    lower_into(statement, &mut stack);
    stack
}

/// Lowers a whole (possibly piggybacked) statement list, separating the
/// statements with `DDL_ITEM ;` markers so a piggyback attack always changes
/// the structure.
#[must_use]
pub fn lower_all(statements: &[Statement]) -> ItemStack {
    let mut stack = ItemStack::new();
    for (i, s) in statements.iter().enumerate() {
        if i > 0 {
            stack.push(Item::elem(ItemTag::DdlItem, ";"));
        }
        lower_into(s, &mut stack);
    }
    stack
}

fn lower_into(statement: &Statement, stack: &mut ItemStack) {
    match statement {
        Statement::Select(s) => lower_select(s, stack),
        Statement::Insert(i) => lower_insert(i, stack),
        Statement::Update(u) => lower_update(u, stack),
        Statement::Delete(d) => lower_delete(d, stack),
        Statement::CreateTable(c) => {
            stack.push(Item::elem(
                ItemTag::DdlItem,
                format!("CREATE TABLE {}", lc(&c.name)),
            ));
        }
        Statement::DropTable(d) => {
            stack.push(Item::elem(
                ItemTag::DdlItem,
                format!("DROP TABLE {}", lc(&d.name)),
            ));
        }
        // Transaction control lowers like DDL: a bare keyword item, so a
        // piggybacked `; COMMIT` still changes the query structure.
        Statement::Begin => stack.push(Item::elem(ItemTag::DdlItem, "BEGIN")),
        Statement::Commit => stack.push(Item::elem(ItemTag::DdlItem, "COMMIT")),
        Statement::Rollback => stack.push(Item::elem(ItemTag::DdlItem, "ROLLBACK")),
    }
}

fn lc(s: &str) -> String {
    s.to_ascii_lowercase()
}

fn lower_select(select: &Select, stack: &mut ItemStack) {
    for table in &select.from {
        stack.push(Item::elem(ItemTag::FromTable, lc(&table.name)));
    }
    for join in &select.joins {
        stack.push(Item::elem(
            ItemTag::JoinItem,
            format!("{} {}", join.kind, lc(&join.table.name)),
        ));
        if let Some(on) = &join.on {
            lower_expr(on, stack);
        }
    }
    for item in &select.items {
        match item {
            SelectItem::Wildcard => stack.push(Item::elem(ItemTag::SelectField, "*")),
            SelectItem::QualifiedWildcard(t) => {
                stack.push(Item::elem(ItemTag::SelectField, format!("{}.*", lc(t))));
            }
            SelectItem::Expr { expr, .. } => {
                stack.push(Item::elem(ItemTag::SelectField, expr_label(expr)));
                // Non-trivial projected expressions contribute their own
                // structure (a projected subquery or function can smuggle
                // data out).
                if !matches!(expr, Expr::Column { .. }) {
                    lower_expr(expr, stack);
                }
            }
        }
    }
    if let Some(where_clause) = &select.where_clause {
        lower_expr(where_clause, stack);
    }
    for g in &select.group_by {
        lower_expr(g, stack);
        stack.push(Item::elem(ItemTag::GroupField, ""));
    }
    if let Some(h) = &select.having {
        lower_expr(h, stack);
        stack.push(Item::elem(ItemTag::HavingItem, ""));
    }
    for o in &select.order_by {
        lower_expr(&o.expr, stack);
        stack.push(Item::elem(
            ItemTag::OrderField,
            if o.descending { "DESC" } else { "ASC" },
        ));
    }
    if let Some(limit) = &select.limit {
        stack.push(Item {
            tag: ItemTag::IntItem,
            data: ItemData::Int(limit.count as i64),
        });
        stack.push(Item {
            tag: ItemTag::IntItem,
            data: ItemData::Int(limit.offset as i64),
        });
        stack.push(Item::elem(ItemTag::LimitItem, ""));
    }
    if let Some((all, next)) = &select.union {
        stack.push(Item::elem(
            ItemTag::UnionItem,
            if *all { "UNION ALL" } else { "UNION" },
        ));
        lower_select(next, stack);
    }
}

fn lower_insert(insert: &Insert, stack: &mut ItemStack) {
    stack.push(Item::elem(ItemTag::InsertTable, lc(&insert.table)));
    for col in &insert.columns {
        stack.push(Item::elem(ItemTag::InsertField, lc(col)));
    }
    match &insert.source {
        InsertSource::Values(rows) => {
            for row in rows {
                for value in row {
                    lower_expr(value, stack);
                }
                stack.push(Item::elem(ItemTag::RowItem, ""));
            }
        }
        InsertSource::Select(select) => {
            stack.push(Item::elem(ItemTag::SubselectBegin, ""));
            lower_select(select, stack);
            stack.push(Item::elem(ItemTag::SubselectEnd, ""));
        }
    }
}

fn lower_update(update: &Update, stack: &mut ItemStack) {
    stack.push(Item::elem(ItemTag::UpdateTable, lc(&update.table)));
    for (col, value) in &update.assignments {
        stack.push(Item::elem(ItemTag::UpdateField, lc(col)));
        lower_expr(value, stack);
    }
    if let Some(where_clause) = &update.where_clause {
        lower_expr(where_clause, stack);
    }
    if let Some(limit) = &update.limit {
        stack.push(Item {
            tag: ItemTag::IntItem,
            data: ItemData::Int(limit.count as i64),
        });
        stack.push(Item::elem(ItemTag::LimitItem, ""));
    }
}

fn lower_delete(delete: &Delete, stack: &mut ItemStack) {
    stack.push(Item::elem(ItemTag::DeleteTable, lc(&delete.table)));
    if let Some(where_clause) = &delete.where_clause {
        lower_expr(where_clause, stack);
    }
    if let Some(limit) = &delete.limit {
        stack.push(Item {
            tag: ItemTag::IntItem,
            data: ItemData::Int(limit.count as i64),
        });
        stack.push(Item::elem(ItemTag::LimitItem, ""));
    }
}

/// Postfix lowering of an expression: operands first, operator on top.
fn lower_expr(expr: &Expr, stack: &mut ItemStack) {
    match expr {
        Expr::Literal(Literal::Int(v)) => {
            stack.push(Item {
                tag: ItemTag::IntItem,
                data: ItemData::Int(*v),
            });
        }
        Expr::Literal(Literal::Float(v)) => {
            stack.push(Item {
                tag: ItemTag::RealItem,
                data: ItemData::Real(*v),
            });
        }
        Expr::Literal(Literal::Str(s)) => {
            stack.push(Item {
                tag: ItemTag::StringItem,
                data: ItemData::Text(s.clone()),
            });
        }
        Expr::Literal(Literal::Null) => {
            stack.push(Item {
                tag: ItemTag::NullItem,
                data: ItemData::Null,
            });
        }
        Expr::Param => stack.push(Item {
            tag: ItemTag::ParamItem,
            data: ItemData::Bot,
        }),
        Expr::Column { table, name } => {
            let label = match table {
                Some(t) => format!("{}.{}", lc(t), lc(name)),
                None => lc(name),
            };
            stack.push(Item::elem(ItemTag::FieldItem, label));
        }
        Expr::Unary { op, operand } => {
            lower_expr(operand, stack);
            stack.push(Item::elem(ItemTag::FuncItem, op.symbol()));
        }
        Expr::Binary { left, op, right } => {
            lower_expr(left, stack);
            lower_expr(right, stack);
            let tag = if op.is_condition() {
                ItemTag::CondItem
            } else {
                ItemTag::FuncItem
            };
            stack.push(Item::elem(tag, op.symbol()));
        }
        Expr::Function { name, args } => {
            for a in args {
                lower_expr(a, stack);
            }
            stack.push(Item::elem(ItemTag::FuncItem, name.clone()));
        }
        Expr::IsNull { expr, negated } => {
            lower_expr(expr, stack);
            stack.push(Item::elem(
                ItemTag::FuncItem,
                if *negated { "IS NOT NULL" } else { "IS NULL" },
            ));
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            lower_expr(expr, stack);
            for e in list {
                lower_expr(e, stack);
            }
            stack.push(Item::elem(
                ItemTag::FuncItem,
                if *negated { "NOT IN" } else { "IN" },
            ));
        }
        Expr::InSelect {
            expr,
            select,
            negated,
        } => {
            lower_expr(expr, stack);
            stack.push(Item::elem(ItemTag::SubselectBegin, ""));
            lower_select(select, stack);
            stack.push(Item::elem(ItemTag::SubselectEnd, ""));
            stack.push(Item::elem(
                ItemTag::FuncItem,
                if *negated { "NOT IN" } else { "IN" },
            ));
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            lower_expr(expr, stack);
            lower_expr(low, stack);
            lower_expr(high, stack);
            stack.push(Item::elem(
                ItemTag::FuncItem,
                if *negated { "NOT BETWEEN" } else { "BETWEEN" },
            ));
        }
        Expr::Subquery(select) => {
            stack.push(Item::elem(ItemTag::SubselectBegin, ""));
            lower_select(select, stack);
            stack.push(Item::elem(ItemTag::SubselectEnd, ""));
        }
        Expr::Exists { select, negated } => {
            stack.push(Item::elem(ItemTag::SubselectBegin, ""));
            lower_select(select, stack);
            stack.push(Item::elem(ItemTag::SubselectEnd, ""));
            stack.push(Item::elem(
                ItemTag::FuncItem,
                if *negated { "NOT EXISTS" } else { "EXISTS" },
            ));
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                lower_expr(op, stack);
            }
            for (when, then) in branches {
                lower_expr(when, stack);
                lower_expr(then, stack);
            }
            if let Some(e) = else_branch {
                lower_expr(e, stack);
            }
            stack.push(Item::elem(ItemTag::FuncItem, "CASE"));
        }
    }
}

/// Short label for a projected expression (shown in `SELECT_FIELD` nodes).
fn expr_label(expr: &Expr) -> String {
    match expr {
        Expr::Column {
            table: Some(t),
            name,
        } => format!("{}.{}", lc(t), lc(name)),
        Expr::Column { table: None, name } => lc(name),
        Expr::Function { name, .. } => format!("{name}()"),
        Expr::Literal(l) => l.to_string(),
        Expr::Subquery(_) => "(subquery)".to_string(),
        _ => "(expr)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn stack_of(sql: &str) -> ItemStack {
        let parsed = parse(sql).expect("parse ok");
        lower_all(&parsed.statements)
    }

    fn rows(sql: &str) -> Vec<(ItemTag, String)> {
        stack_of(sql)
            .rows_top_down()
            .map(|i| (i.tag, i.data.to_string()))
            .collect()
    }

    #[test]
    fn figure2a_query_structure() {
        // The paper's Figure 2(a), top of stack first.
        let got = rows("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234");
        let expected = vec![
            (ItemTag::CondItem, "AND".to_string()),
            (ItemTag::FuncItem, "=".to_string()),
            (ItemTag::IntItem, "1234".to_string()),
            (ItemTag::FieldItem, "creditcard".to_string()),
            (ItemTag::FuncItem, "=".to_string()),
            (ItemTag::StringItem, "ID34FG".to_string()),
            (ItemTag::FieldItem, "reservid".to_string()),
            (ItemTag::SelectField, "*".to_string()),
            (ItemTag::FromTable, "tickets".to_string()),
        ];
        assert_eq!(got, expected);
    }

    #[test]
    fn figure3_second_order_structure_changes() {
        // After MySQL decodes U+02BC and the `--` comments out the tail,
        // the query collapses to a single comparison: 4 fewer nodes.
        let benign = stack_of("SELECT * FROM tickets WHERE reservID = 'x' AND creditCard = 1");
        let attacked = stack_of("SELECT * FROM tickets WHERE reservID = 'ID34FG'");
        assert_eq!(benign.len(), 9);
        assert_eq!(attacked.len(), 5);
    }

    #[test]
    fn figure4_mimicry_same_arity_different_types() {
        let benign = stack_of("SELECT * FROM tickets WHERE reservID = 'x' AND creditCard = 1");
        let mimicry = stack_of("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1 = 1");
        assert_eq!(benign.len(), mimicry.len());
        // Fourth row from the top: FIELD_ITEM creditcard vs INT_ITEM 1.
        let b: Vec<_> = benign.rows_top_down().collect();
        let m: Vec<_> = mimicry.rows_top_down().collect();
        assert_eq!(b[3].tag, ItemTag::FieldItem);
        assert_eq!(m[3].tag, ItemTag::IntItem);
    }

    #[test]
    fn literals_only_differ_in_data_not_structure() {
        let a = stack_of("SELECT * FROM t WHERE x = 'aaa' AND y = 1");
        let b = stack_of("SELECT * FROM t WHERE x = 'zzz' AND y = 99");
        let tags_a: Vec<_> = a.items().iter().map(|i| i.tag).collect();
        let tags_b: Vec<_> = b.items().iter().map(|i| i.tag).collect();
        assert_eq!(tags_a, tags_b);
        assert_ne!(a, b);
    }

    #[test]
    fn canonical_bytes_ignore_data_payloads() {
        let a = stack_of("SELECT * FROM t WHERE x = 'aaa'");
        let b = stack_of("SELECT * FROM t WHERE x = 'bbb'");
        let bytes = |s: &ItemStack| {
            let mut v = Vec::new();
            for i in s.items() {
                i.canonical_bytes(&mut v);
            }
            v
        };
        assert_eq!(bytes(&a), bytes(&b));
        let c = stack_of("SELECT * FROM t WHERE y = 'aaa'");
        assert_ne!(bytes(&a), bytes(&c));
    }

    #[test]
    fn union_changes_structure() {
        let plain = stack_of("SELECT a FROM t WHERE id = 1");
        let union = stack_of("SELECT a FROM t WHERE id = 1 UNION SELECT password FROM users");
        assert!(union.len() > plain.len());
        assert!(union.items().iter().any(|i| i.tag == ItemTag::UnionItem));
    }

    #[test]
    fn piggyback_adds_separator() {
        let s = stack_of("SELECT 1; DROP TABLE users");
        assert!(s
            .items()
            .iter()
            .any(|i| i.tag == ItemTag::DdlItem && i.data == ItemData::Text(";".into())));
    }

    #[test]
    fn insert_stack_shape() {
        let got = rows("INSERT INTO users (name, bio) VALUES ('ann', 'hello')");
        assert_eq!(
            got,
            vec![
                (ItemTag::RowItem, String::new()),
                (ItemTag::StringItem, "hello".to_string()),
                (ItemTag::StringItem, "ann".to_string()),
                (ItemTag::InsertField, "bio".to_string()),
                (ItemTag::InsertField, "name".to_string()),
                (ItemTag::InsertTable, "users".to_string()),
            ]
        );
    }

    #[test]
    fn update_stack_shape() {
        let s = stack_of("UPDATE t SET a = 'x' WHERE id = 7");
        let tags: Vec<_> = s.items().iter().map(|i| i.tag).collect();
        assert_eq!(
            tags,
            vec![
                ItemTag::UpdateTable,
                ItemTag::UpdateField,
                ItemTag::StringItem,
                ItemTag::FieldItem,
                ItemTag::IntItem,
                ItemTag::FuncItem,
            ]
        );
    }

    #[test]
    fn string_data_iterates_literals() {
        let s = stack_of("INSERT INTO t (a, b) VALUES ('<script>', 'ok')");
        let data: Vec<_> = s.string_data().collect();
        assert_eq!(data, vec!["<script>", "ok"]);
    }

    #[test]
    fn limit_values_are_data_nodes() {
        let a = stack_of("SELECT a FROM t LIMIT 10");
        let b = stack_of("SELECT a FROM t LIMIT 20");
        let tags = |s: &ItemStack| s.items().iter().map(|i| i.tag).collect::<Vec<_>>();
        assert_eq!(tags(&a), tags(&b));
    }

    #[test]
    fn subquery_is_bracketed() {
        let s = stack_of("SELECT a FROM t WHERE id IN (SELECT tid FROM u)");
        let tags: Vec<_> = s.items().iter().map(|i| i.tag).collect();
        assert!(tags.contains(&ItemTag::SubselectBegin));
        assert!(tags.contains(&ItemTag::SubselectEnd));
    }

    #[test]
    fn construct_profile_flags_families() {
        let p = stack_of("SELECT * FROM t WHERE x = 1").construct_profile();
        assert_eq!(p, ConstructProfile::default());

        let p = stack_of("SELECT a FROM t JOIN u ON t.id = u.tid").construct_profile();
        assert!(p.join && !p.group_by && !p.subquery && !p.union);

        let p = stack_of("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
            .construct_profile();
        assert!(p.group_by && !p.join);

        let p = stack_of("SELECT a FROM t WHERE a IN (SELECT b FROM u)").construct_profile();
        assert!(p.subquery);

        // UNION smuggled inside a subquery flags both families.
        let p = stack_of("SELECT a FROM t WHERE a IN (SELECT b FROM u UNION SELECT c FROM v)")
            .construct_profile();
        assert!(p.subquery && p.union);
    }

    #[test]
    fn display_matches_figure_layout() {
        let s = stack_of("SELECT * FROM tickets WHERE reservID = 'ID34FG'");
        let text = s.to_string();
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("FUNC_ITEM"), "got: {first}");
        assert!(text.lines().last().unwrap().starts_with("FROM_TABLE"));
    }
}
